"""Positive/negative vectors for each repro-lint rule (RL001-RL007)."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source

#: Paths that place a snippet inside / outside each rule's scope.
CORE = "src/repro/core/mod.py"
PLATFORM = "src/repro/platform/mod.py"
EXPERIMENTS = "src/repro/experiments/mod.py"
TESTS = "tests/core/test_mod.py"
SHIM = "src/repro/utils/rng.py"


def codes(source: str, path: str = CORE) -> list[str]:
    return [d.code for d in lint_source(textwrap.dedent(source), path)]


# -- RL001: no global RNG ------------------------------------------------
def test_rl001_flags_stdlib_random_call() -> None:
    src = """
        import random

        def f():
            return random.random()
    """
    assert codes(src) == ["RL001"]


def test_rl001_flags_numpy_global_stream() -> None:
    src = """
        import numpy as np

        def f():
            return np.random.rand(4)
    """
    assert codes(src) == ["RL001"]


def test_rl001_flags_aliased_import() -> None:
    src = """
        from numpy import random as npr

        def f():
            return npr.normal()
    """
    assert codes(src) == ["RL001"]


def test_rl001_ignores_injected_generator() -> None:
    src = """
        def f(rng):
            return rng.random() + rng.normal()
    """
    assert codes(src) == []


def test_rl001_ignores_constructors() -> None:
    src = """
        import random
        import numpy as np

        def f(seed):
            return np.random.default_rng(seed), random.Random(seed)
    """
    assert codes(src) == []


def test_rl001_allows_the_seeding_shim() -> None:
    src = """
        import numpy as np

        def spawn(seed):
            return np.random.default_rng(np.random.SeedSequence(seed))
    """
    assert codes(src, SHIM) == []


# -- RL002: no wall-clock in core/platform/workers -----------------------
def test_rl002_flags_time_time_in_core() -> None:
    src = """
        import time

        def f():
            return time.time()
    """
    assert codes(src, CORE) == ["RL002"]
    assert codes(src, PLATFORM) == ["RL002"]


def test_rl002_flags_datetime_now() -> None:
    src = """
        import datetime

        def f():
            return datetime.datetime.now()
    """
    assert codes(src, CORE) == ["RL002"]


def test_rl002_out_of_scope_dirs_are_fine() -> None:
    src = """
        import time

        def f():
            return time.time()
    """
    assert codes(src, EXPERIMENTS) == []
    assert codes(src, TESTS) == []


def test_rl002_perf_counter_default_is_legal() -> None:
    src = """
        import time

        def f(clock=time.perf_counter):
            return clock()
    """
    assert codes(src, CORE) == []


# -- RL003: no order-leaking set iteration -------------------------------
def test_rl003_flags_for_over_set_literal() -> None:
    src = """
        def f(out):
            for x in {3, 1, 2}:
                out.append(x)
    """
    assert codes(src) == ["RL003"]


def test_rl003_flags_set_call_into_list() -> None:
    src = """
        def f(xs):
            return list(set(xs))
    """
    assert codes(src) == ["RL003"]


def test_rl003_flags_join_over_set() -> None:
    src = """
        def f(xs):
            return ",".join({str(x) for x in xs})
    """
    assert codes(src) == ["RL003"]


def test_rl003_sorted_set_is_fine() -> None:
    src = """
        def f(xs, out):
            for x in sorted(set(xs)):
                out.append(x)
    """
    assert codes(src) == []


def test_rl003_order_insensitive_consumers_are_fine() -> None:
    src = """
        def f(xs):
            return sum(set(xs)), len({1, 2}), max(set(xs))
    """
    assert codes(src) == []


# -- RL004: no float equality in src numerics ----------------------------
def test_rl004_flags_float_equality() -> None:
    src = """
        def f(x):
            return x == 0.5
    """
    assert codes(src) == ["RL004"]


def test_rl004_flags_float_inequality() -> None:
    src = """
        def f(x):
            return x != 1.5
    """
    assert codes(src) == ["RL004"]


def test_rl004_not_applied_to_tests() -> None:
    src = """
        def f(x):
            assert x == 0.25
    """
    assert codes(src, TESTS) == []


def test_rl004_isclose_and_int_compare_are_fine() -> None:
    src = """
        import math

        def f(x, n):
            return math.isclose(x, 0.5) or n == 0
    """
    assert codes(src) == []


# -- RL005: recorder params default to NULL_RECORDER ---------------------
def test_rl005_flags_recorder_none_default() -> None:
    src = """
        def f(recorder=None):
            return recorder
    """
    assert codes(src) == ["RL005"]


def test_rl005_null_recorder_default_is_fine() -> None:
    src = """
        from repro.obs.metrics import NULL_RECORDER

        def f(recorder=NULL_RECORDER):
            return recorder
    """
    assert codes(src) == []


def test_rl005_other_none_defaults_are_fine() -> None:
    src = """
        def f(tester=None, recorder_path=None):
            return tester
    """
    assert codes(src) == []


# -- RL006: no mutable default arguments ---------------------------------
def test_rl006_flags_mutable_defaults() -> None:
    src = """
        def f(xs=[], mapping={}, seen=set()):
            return xs, mapping, seen
    """
    assert codes(src) == ["RL006", "RL006", "RL006"]


def test_rl006_flags_kwonly_and_lambda() -> None:
    src = """
        def f(*, xs=[]):
            return xs

        g = lambda xs=[]: xs
    """
    assert codes(src) == ["RL006", "RL006"]


def test_rl006_immutable_defaults_are_fine() -> None:
    src = """
        def f(xs=(), name="", flag=False, value=None):
            return xs, name, flag, value
    """
    assert codes(src) == []


# -- select --------------------------------------------------------------
# -- RL007: no OS-entropy identifiers in library code --------------------
def test_rl007_flags_uuid4_and_urandom() -> None:
    src = """
        import os
        import uuid

        def make_ids():
            return uuid.uuid4().hex, os.urandom(16).hex()
    """
    assert codes(src) == ["RL007", "RL007"]


def test_rl007_flags_secrets_module_by_prefix() -> None:
    src = """
        import secrets

        def token():
            return secrets.token_hex(8), secrets.choice("ab")
    """
    assert codes(src) == ["RL007", "RL007"]


def test_rl007_flags_uuid1_and_system_random() -> None:
    src = """
        import random
        import uuid

        def f():
            return uuid.uuid1(), random.SystemRandom()
    """
    # SystemRandom is OS entropy (RL007) even though RL001 exempts it
    # as a constructor
    assert codes(src) == ["RL007", "RL007"]


def test_rl007_deterministic_uuids_are_fine() -> None:
    src = """
        import uuid

        def f(ns):
            return uuid.uuid5(ns, "name"), uuid.uuid3(ns, "name")
    """
    assert codes(src) == []


def test_rl007_injected_id_source_is_the_blessed_path() -> None:
    src = """
        def f(ids):
            return ids.trace_id(), ids.span_id()
    """
    assert codes(src) == []


def test_rl007_not_applied_to_tests() -> None:
    src = """
        import uuid

        def test_f():
            return uuid.uuid4()
    """
    assert codes(src, path=TESTS) == []


def test_select_restricts_to_requested_codes() -> None:
    src = textwrap.dedent(
        """
        import random

        def f(xs=[]):
            return random.random()
        """
    )
    only_rl006 = lint_source(src, CORE, select=frozenset({"RL006"}))
    assert [d.code for d in only_rl006] == ["RL006"]
