"""Lockset race sanitizer self-tests.

The workload classes live in *this* file and the sanitizer is pointed
at it via ``extra_files``, so the tests exercise the real pipeline —
source parsing, line tracing, lock wrapping, shadow-word transitions —
not a mocked subset.
"""

from __future__ import annotations

import sys
import threading

from repro.analysis.sanitizer import (
    LockSanitizer,
    _collect_writes,
    run_race_command,
    sanitized,
)
import ast

WRITERS = 4
ROUNDS = 50


class _RacyCounter:
    """Writes a shared attribute with no lock at all."""

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> None:
        for _ in range(ROUNDS):
            self.value += 1


class _LockedCounter:
    """Every write runs under one lock created post-install."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.value = 0

    def bump(self) -> None:
        for _ in range(ROUNDS):
            with self.lock:
                self.value += 1


class _LocalCounter:
    """Per-thread state: same attribute name, never shared."""

    def __init__(self) -> None:
        self.slots = threading.local()

    def bump(self) -> None:
        self.slots.value = getattr(self.slots, "value", 0) + 1


def _hammer(target) -> None:
    threads = [
        threading.Thread(target=target) for _ in range(WRITERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_racy_counter_is_reported_once():
    with sanitized(extra_files=[__file__]) as sanitizer:
        counter = _RacyCounter()
        _hammer(counter.bump)
    assert len(sanitizer.reports) == 1
    (report,) = sanitizer.reports
    assert report.obj_type == "_RacyCounter"
    assert report.attr == "value"
    assert report.first_stack and report.second_stack
    assert "RACE on _RacyCounter.value" in sanitizer.format_reports()


def test_locked_counter_is_clean():
    with sanitized(extra_files=[__file__]) as sanitizer:
        counter = _LockedCounter()
        _hammer(counter.bump)
        assert counter.value == WRITERS * ROUNDS
    assert sanitizer.reports == []


def test_single_thread_writes_never_alarm():
    # the exclusive state: initialisation-style single-owner writes
    with sanitized(extra_files=[__file__]) as sanitizer:
        counter = _RacyCounter()
        counter.bump()
        counter.bump()
    assert sanitizer.reports == []


def test_thread_local_state_is_exempt():
    with sanitized(extra_files=[__file__]) as sanitizer:
        counter = _LocalCounter()
        _hammer(counter.bump)
    assert sanitizer.reports == []


def test_uninstall_restores_tracing_and_lock_classes():
    before_lock = threading.Lock
    before_trace = sys.gettrace()
    sanitizer = LockSanitizer(extra_files=[__file__])
    sanitizer.install()
    try:
        assert threading.Lock is not before_lock
    finally:
        sanitizer.uninstall()
    assert threading.Lock is before_lock
    assert sys.gettrace() is before_trace


def test_collect_writes_maps_mutations_to_lines():
    source = (
        "def f(self, other):\n"            # 1
        "    self.a = 1\n"                 # 2
        "    self.b += 2\n"                # 3
        "    self.items[3] = 4\n"          # 4
        "    self.bucket.append(5)\n"      # 5
        "    del self.gone\n"              # 6
        "    local = 7\n"                  # 7 (not an attribute write)
        "    plain.append(8)\n"            # 8 (Name receiver: untracked)
    )
    writes = _collect_writes(ast.parse(source))
    assert writes[2] == [(("self",), "a")]
    assert writes[3] == [(("self",), "b")]
    assert writes[4] == [(("self",), "items")]
    assert writes[5] == [(("self",), "bucket")]
    assert writes[6] == [(("self",), "gone")]
    assert 7 not in writes
    assert 8 not in writes


def test_run_race_command_requires_forwarded_args(capsys):
    assert run_race_command([]) == 2
    assert "--race needs pytest arguments" in capsys.readouterr().out
