"""``tools/repro_lint.py`` must stay a thin shim over the lint CLI.

The standalone checker and ``repro-icrowd lint`` advertise identical
behaviour; the cheapest way to keep that promise is to make the shim
*be* the CLI — it imports :func:`repro.analysis.cli.main` and forwards
``sys.argv`` untouched.  These tests pin that contract:

- the shim's ``main`` is the same object the package exports (any
  divergence means someone forked the option surface);
- both entry points print the same rule catalogue and agree on exit
  codes, including the ``--race -- <pytest args>`` forwarding split.
"""

from __future__ import annotations

import importlib.util
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SHIM = REPO_ROOT / "tools" / "repro_lint.py"
SRC = REPO_ROOT / "src"


def _load_shim():
    spec = importlib.util.spec_from_file_location("repro_lint_shim", SHIM)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_shim(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, str(SHIM), *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def _run_cli(*args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": ""},
    )


def test_shim_main_is_the_cli_main():
    from repro.analysis.cli import main

    shim = _load_shim()
    assert shim.main is main


def test_rule_catalogue_matches():
    shim = _run_shim("--list-rules")
    cli = _run_cli("--list-rules")
    assert shim.returncode == 0 and cli.returncode == 0
    assert shim.stdout == cli.stdout
    assert "RL401" in shim.stdout and "RL404" in shim.stdout


def test_exit_codes_agree_on_usage_errors():
    # deep-only rule selected without --deep: both exit 2
    shim = _run_shim("--select", "RL402", str(SRC / "repro" / "platform"))
    cli = _run_cli("--select", "RL402", str(SRC / "repro" / "platform"))
    assert shim.returncode == cli.returncode == 2


def test_race_forwarding_split_agrees():
    # --race with no forwarded pytest args is a usage error on both
    shim = _run_shim("--race")
    cli = _run_cli("--race")
    assert shim.returncode == cli.returncode == 2
