"""Suppression comments: inline, standalone, multi-code, and misses."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source

PATH = "src/repro/core/mod.py"


def lint(source: str) -> list[str]:
    return [d.code for d in lint_source(textwrap.dedent(source), PATH)]


def test_inline_disable_suppresses_own_line() -> None:
    src = """
        import random

        def f():
            return random.random()  # repro-lint: disable=RL001 -- vetted
    """
    assert lint(src) == []


def test_standalone_disable_applies_to_next_code_line() -> None:
    src = """
        def f(x):
            # repro-lint: disable=RL004 -- exact sentinel comparison
            return x == 0.0
    """
    assert lint(src) == []


def test_standalone_disable_skips_blank_and_comment_lines() -> None:
    src = """
        def f(x):
            # repro-lint: disable=RL004 -- exact sentinel comparison

            # the guard below is exact on purpose
            return x == 0.0
    """
    assert lint(src) == []


def test_multiple_codes_one_comment() -> None:
    src = """
        import random

        def f(x=[]):  # repro-lint: disable=RL006, RL001
            return random.random()
    """
    # RL006 sits on the def line (suppressed); the RL001 call is on the
    # next line, so it still fires.
    assert lint(src) == ["RL001"]


def test_wrong_code_does_not_suppress() -> None:
    src = """
        import random

        def f():
            return random.random()  # repro-lint: disable=RL002
    """
    assert lint(src) == ["RL001"]


def test_unrelated_comment_does_not_suppress() -> None:
    src = """
        import random

        def f():
            return random.random()  # TODO: revisit
    """
    assert lint(src) == ["RL001"]


def test_suppression_is_line_local() -> None:
    src = """
        import random

        def f():
            a = random.random()  # repro-lint: disable=RL001 -- vetted
            b = random.random()
            return a + b
    """
    diags = lint_source(textwrap.dedent(src), PATH)
    assert [d.code for d in diags] == ["RL001"]
    assert diags[0].line == 6
