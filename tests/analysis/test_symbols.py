"""Pass-1 symbol table: extraction, resolution, content-hash cache."""

from __future__ import annotations

import ast
import json
import pathlib

from repro.analysis.symbols import (
    SymbolTable,
    build_symbol_table,
    extract_module,
    module_name,
)

PKG = "src/repro/pkg"


def _extract(source: str, path: str = f"{PKG}/mod.py"):
    return extract_module(ast.parse(source), path)


def _table(sources: dict[str, str]) -> SymbolTable:
    trees = {path: ast.parse(text) for path, text in sources.items()}
    return build_symbol_table(sources, trees)


class TestModuleName:
    def test_src_anchored(self) -> None:
        assert module_name("src/repro/core/ppr.py") == "repro.core.ppr"

    def test_absolute_path(self) -> None:
        assert (
            module_name("/root/repo/src/repro/obs/metrics.py")
            == "repro.obs.metrics"
        )

    def test_package_init(self) -> None:
        assert module_name("src/repro/core/__init__.py") == "repro.core"

    def test_tests_anchored(self) -> None:
        assert (
            module_name("tests/analysis/test_rules.py")
            == "tests.analysis.test_rules"
        )

    def test_bare_file_falls_back_to_stem(self) -> None:
        assert module_name("scratch.py") == "scratch"


class TestExtraction:
    def test_function_symbols_capture_signature(self) -> None:
        mod = _extract(
            "def f(a, b, *args, c, **kwargs):\n    pass\n"
        )
        (func,) = mod.functions
        assert func.qualname == "repro.pkg.mod.f"
        assert func.params == ("a", "b")
        assert func.kwonly == ("c",)
        assert func.has_varargs and func.has_kwargs
        assert not func.is_method and not func.is_nested
        assert func.accepts("c") and not func.accepts("args")

    def test_methods_and_nested_defs_are_classified(self) -> None:
        mod = _extract(
            "class K:\n"
            "    def m(self, x):\n"
            "        def inner(y):\n"
            "            return y\n"
            "        return inner(x)\n"
        )
        by_name = {func.local_name: func for func in mod.functions}
        assert by_name["K.m"].is_method
        assert not by_name["K.m"].is_nested
        assert by_name["K.m.inner"].is_nested

    def test_global_kinds(self) -> None:
        mod = _extract(
            "import numpy as np\n"
            "STATE = {}\n"
            "ITEMS = list()\n"
            "STREAM = np.random.default_rng(7)\n"
            "LIMIT = 10\n"
        )
        kinds = {glob.name: glob.kind for glob in mod.globals}
        assert kinds == {
            "STATE": "mutable",
            "ITEMS": "mutable",
            "STREAM": "rng",
            "LIMIT": "other",
        }

    def test_import_aliases_recorded(self) -> None:
        mod = _extract(
            "import numpy.random as npr\n"
            "from concurrent.futures import ProcessPoolExecutor as Pool\n"
        )
        aliases = dict(mod.imports)
        assert aliases["npr"] == "numpy.random"
        assert aliases["Pool"] == "concurrent.futures.ProcessPoolExecutor"


class TestSymbolTable:
    def test_resolve_callable_function_method_constructor(self) -> None:
        table = _table(
            {
                f"{PKG}/mod.py": (
                    "def f():\n    pass\n"
                    "class K:\n"
                    "    def __init__(self):\n        pass\n"
                    "    def m(self):\n        pass\n"
                )
            }
        )
        assert table.resolve_callable("repro.pkg.mod.f") is not None
        method = table.resolve_callable("repro.pkg.mod.K.m")
        assert method is not None and method.is_method
        init = table.resolve_callable("repro.pkg.mod.K")
        assert init is not None and init.local_name == "K.__init__"
        assert table.resolve_callable("repro.pkg.mod.missing") is None

    def test_module_lookup_by_path_and_name(self) -> None:
        table = _table({f"{PKG}/mod.py": "X = 1\n"})
        assert table.module_for_path(f"{PKG}/mod.py") is not None
        assert table.module("repro.pkg.mod") is not None
        assert table.global_symbol("repro.pkg.mod.X") is not None


class TestCache:
    SOURCES = {
        f"{PKG}/a.py": "def fa():\n    pass\n",
        f"{PKG}/b.py": "def fb():\n    pass\n",
    }

    def test_cache_round_trip_skips_reparse(
        self, tmp_path: pathlib.Path
    ) -> None:
        cache = tmp_path / "symtab.json"
        trees = {
            path: ast.parse(text) for path, text in self.SOURCES.items()
        }
        first = build_symbol_table(self.SOURCES, trees, cache)
        assert cache.is_file()
        # a second build must be served fully from the cache: passing
        # no trees at all proves extraction is skipped
        second = build_symbol_table(self.SOURCES, {}, cache)
        assert [m.module for m in first.modules()] == [
            m.module for m in second.modules()
        ]
        assert second.function("repro.pkg.a.fa") is not None

    def test_changed_file_is_reextracted(
        self, tmp_path: pathlib.Path
    ) -> None:
        cache = tmp_path / "symtab.json"
        trees = {
            path: ast.parse(text) for path, text in self.SOURCES.items()
        }
        build_symbol_table(self.SOURCES, trees, cache)
        changed = dict(self.SOURCES)
        changed[f"{PKG}/a.py"] = "def fa_v2():\n    pass\n"
        # only the changed file needs a tree; b.py rides the cache
        table = build_symbol_table(
            changed,
            {f"{PKG}/a.py": ast.parse(changed[f"{PKG}/a.py"])},
            cache,
        )
        assert table.function("repro.pkg.a.fa_v2") is not None
        assert table.function("repro.pkg.a.fa") is None
        assert table.function("repro.pkg.b.fb") is not None

    def test_corrupt_cache_is_ignored(
        self, tmp_path: pathlib.Path
    ) -> None:
        cache = tmp_path / "symtab.json"
        cache.write_text("{not json", encoding="utf-8")
        trees = {
            path: ast.parse(text) for path, text in self.SOURCES.items()
        }
        table = build_symbol_table(self.SOURCES, trees, cache)
        assert table.function("repro.pkg.a.fa") is not None
        # and the cache healed into valid JSON
        assert isinstance(
            json.loads(cache.read_text(encoding="utf-8")), dict
        )

    def test_version_mismatch_invalidates(
        self, tmp_path: pathlib.Path
    ) -> None:
        cache = tmp_path / "symtab.json"
        trees = {
            path: ast.parse(text) for path, text in self.SOURCES.items()
        }
        build_symbol_table(self.SOURCES, trees, cache)
        payload = json.loads(cache.read_text(encoding="utf-8"))
        payload["version"] = -1
        cache.write_text(json.dumps(payload), encoding="utf-8")
        # stale version → full re-extraction (trees required again)
        table = build_symbol_table(self.SOURCES, trees, cache)
        assert table.function("repro.pkg.b.fb") is not None
