"""Strict-typing gate: runs mypy when the tool is available.

The container used for tier-1 runs does not ship mypy; CI's
``static-analysis`` job installs it and runs the same command, so this
test skips rather than fails when the import is missing.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_mypy_strict_is_clean() -> None:
    pytest.importorskip("mypy", reason="mypy not installed in this env")
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            "pyproject.toml",
            "src/repro",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
