"""Unit tests for AvgAccPV, QF-Only and BestEffort baselines."""

import pytest

from repro.baselines import AvgAccPV, BestEffort, QFOnly
from repro.core.types import Label


class TestAvgAccPV:
    def make_policy(self, paper_tasks, threshold=0.5):
        return AvgAccPV(
            paper_tasks,
            qualification_tasks=[0, 1],
            threshold=threshold,
            k=3,
            seed=0,
        )

    def test_qualification_served_first(self, paper_tasks):
        policy = self.make_policy(paper_tasks)
        assignment = policy.on_worker_request("w1")
        assert assignment.is_test
        assert assignment.task_id in (0, 1)

    def test_rejection_below_threshold(self, paper_tasks):
        policy = self.make_policy(paper_tasks, threshold=1.0)
        for task_id in (0, 1):
            policy.on_worker_request("bad")
            policy.on_answer(
                "bad", task_id, paper_tasks[task_id].truth.flipped()
            )
        assert policy.is_worker_rejected("bad")
        assert policy.on_worker_request("bad") is None

    def test_qualified_worker_served_random_tasks(self, paper_tasks):
        policy = self.make_policy(paper_tasks, threshold=0.0)
        for task_id in (0, 1):
            policy.on_worker_request("w1")
            policy.on_answer("w1", task_id, paper_tasks[task_id].truth)
        assignment = policy.on_worker_request("w1")
        assert not assignment.is_test
        assert assignment.task_id not in (0, 1)

    def test_worker_accuracies_from_qualification(self, paper_tasks):
        policy = self.make_policy(paper_tasks, threshold=0.0)
        policy.on_answer("w1", 0, paper_tasks[0].truth)
        policy.on_answer("w1", 1, paper_tasks[1].truth.flipped())
        assert policy.worker_accuracies()["w1"] == pytest.approx(0.5)

    def test_pv_aggregation_weighted_by_accuracy(self, paper_tasks):
        policy = self.make_policy(paper_tasks, threshold=0.0)
        # expert answers both qualification tasks right, spammers wrong
        for worker, ok in [("expert", True), ("s1", False), ("s2", False)]:
            for task_id in (0, 1):
                truth = paper_tasks[task_id].truth
                policy.on_answer(
                    worker, task_id, truth if ok else truth.flipped()
                )
        # on task 5, the expert says YES, spammers say NO
        policy.on_answer("expert", 5, Label.YES)
        policy.on_answer("s1", 5, Label.NO)
        policy.on_answer("s2", 5, Label.NO)
        assert policy.predictions()[5] is Label.YES


@pytest.fixture
def variant_kwargs(paper_tasks, paper_graph, tiny_config):
    return dict(
        tasks=paper_tasks,
        config=tiny_config,
        graph=paper_graph,
        qualification_tasks=[0, 1],
    )


def warmup(policy, tasks, worker, correct=True):
    for _ in range(len(policy.qualification_tasks)):
        assignment = policy.on_worker_request(worker)
        truth = tasks[assignment.task_id].truth
        policy.on_answer(
            worker, assignment.task_id, truth if correct else truth.flipped()
        )


class TestQFOnly:
    def test_observed_frozen_to_qualification(self, variant_kwargs, paper_tasks):
        policy = QFOnly(**variant_kwargs)
        warmup(policy, paper_tasks, "w1")
        before = policy.estimate_for("w1").copy()
        # complete a consensus task — estimates must NOT change
        for worker in ("w1", "w2", "w3"):
            if worker != "w1":
                warmup(policy, paper_tasks, worker)
            policy.on_answer(worker, 5, Label.YES)
        after = policy.estimate_for("w1")
        assert (before == after).all()

    def test_still_assigns_tasks(self, variant_kwargs, paper_tasks):
        policy = QFOnly(**variant_kwargs)
        warmup(policy, paper_tasks, "w1")
        assignment = policy.on_worker_request("w1")
        assert assignment is not None


class TestBestEffort:
    def test_assigns_workers_own_best_task(self, variant_kwargs, paper_tasks):
        policy = BestEffort(**variant_kwargs)
        warmup(policy, paper_tasks, "w1")
        assignment = policy.on_worker_request("w1")
        assert assignment is not None
        estimates = policy.estimate_for("w1")
        candidates = [
            t for t in policy.uncompleted_tasks()
        ]
        best_value = max(float(estimates[t]) for t in candidates)
        assert float(estimates[assignment.task_id]) == pytest.approx(
            best_value
        )

    def test_never_reassigns_seen_task(self, variant_kwargs, paper_tasks):
        policy = BestEffort(**variant_kwargs)
        warmup(policy, paper_tasks, "w1")
        seen = set()
        for _ in range(5):
            assignment = policy.on_worker_request("w1")
            if assignment is None:
                break
            assert assignment.task_id not in seen
            seen.add(assignment.task_id)
            policy.on_answer("w1", assignment.task_id, Label.YES)

    def test_returns_none_when_exhausted(self, paper_tasks, tiny_config, paper_graph):
        policy = BestEffort(
            paper_tasks,
            tiny_config,
            graph=paper_graph,
            qualification_tasks=[0, 1],
        )
        warmup(policy, paper_tasks, "w1")
        for _ in range(len(paper_tasks)):
            assignment = policy.on_worker_request("w1")
            if assignment is None:
                break
            policy.on_answer("w1", assignment.task_id, Label.YES)
        assert policy.on_worker_request("w1") is None
