"""Unit tests for the Hungarian-matching assignment policy."""

import pytest

from repro.baselines import MatchingPolicy
from repro.core.types import Label


@pytest.fixture
def policy(paper_tasks, paper_graph, tiny_config):
    return MatchingPolicy(
        paper_tasks,
        tiny_config,
        graph=paper_graph,
        qualification_tasks=[0, 1],
    )


def warmup(policy, tasks, worker, correct=True):
    for _ in range(len(policy.qualification_tasks)):
        assignment = policy.on_worker_request(worker)
        truth = tasks[assignment.task_id].truth
        policy.on_answer(
            worker,
            assignment.task_id,
            truth if correct else truth.flipped(),
        )


class TestMatchingPolicy:
    def test_serves_tasks_after_warmup(self, policy, paper_tasks):
        warmup(policy, paper_tasks, "w1")
        assignment = policy.on_worker_request("w1")
        assert assignment is not None
        assert assignment.task_id not in policy.qualification_tasks

    def test_distinct_tasks_for_concurrent_workers(self, policy, paper_tasks):
        for worker in ("w1", "w2", "w3", "w4"):
            warmup(policy, paper_tasks, worker)
        # in one matching round each worker gets her own slot; since a
        # task has k=3 slots, overlaps are allowed but each worker gets
        # exactly one task
        seen = {}
        actives = ["w1", "w2", "w3", "w4"]
        for worker in actives:
            assignment = policy.on_worker_request(worker, actives)
            assert assignment is not None
            seen[worker] = assignment.task_id
        assert len(seen) == 4

    def test_completion_flow(self, policy, paper_tasks):
        for worker in ("w1", "w2", "w3"):
            warmup(policy, paper_tasks, worker)
        for worker in ("w1", "w2", "w3"):
            policy.on_answer(worker, 5, Label.YES)
        assert 5 in policy.completed_tasks()
        assert policy.predictions()[5] is Label.YES
