"""Unit tests for RandomMV / RandomEM baselines."""

import pytest

from repro.baselines import RandomEM, RandomMV
from repro.core.types import Label, Task, TaskSet


def make_tasks(n=5):
    return TaskSet(
        [
            Task(i, f"t{i}", "d", Label.YES if i % 2 == 0 else Label.NO)
            for i in range(n)
        ]
    )


class TestRandomMV:
    def test_serves_unseen_tasks_only(self):
        tasks = make_tasks(3)
        policy = RandomMV(tasks, k=3, seed=0)
        seen = set()
        for _ in range(3):
            assignment = policy.on_worker_request("w1")
            assert assignment.task_id not in seen
            seen.add(assignment.task_id)
            policy.on_answer("w1", assignment.task_id, Label.YES)
        # all tasks answered once by w1 → nothing left for w1
        assert policy.on_worker_request("w1") is None

    def test_holding_blocks_oversubscription(self):
        """A task holding k outstanding assignments must not be served
        again before answers come back."""
        tasks = make_tasks(1)
        policy = RandomMV(tasks, k=2, seed=0)
        a1 = policy.on_worker_request("w1")
        a2 = policy.on_worker_request("w2")
        assert a1.task_id == a2.task_id == 0
        assert policy.on_worker_request("w3") is None

    def test_completion_and_predictions(self):
        tasks = make_tasks(1)
        policy = RandomMV(tasks, k=3, seed=0)
        for worker, label in [
            ("w1", Label.YES),
            ("w2", Label.YES),
            ("w3", Label.NO),
        ]:
            policy.on_worker_request(worker)
            policy.on_answer(worker, 0, label)
        assert policy.is_finished()
        assert policy.predictions()[0] is Label.YES

    def test_excluded_tasks_not_served(self):
        tasks = make_tasks(3)
        policy = RandomMV(tasks, k=1, seed=0, excluded_tasks=[0, 2])
        assignment = policy.on_worker_request("w1")
        assert assignment.task_id == 1

    def test_excluded_predictions_are_truth(self):
        tasks = make_tasks(3)
        policy = RandomMV(tasks, k=1, seed=0, excluded_tasks=[0])
        assert policy.predictions()[0] == tasks[0].truth

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            RandomMV(make_tasks(), k=0)

    def test_answers_to_excluded_tasks_ignored(self):
        tasks = make_tasks(3)
        policy = RandomMV(tasks, k=1, seed=0, excluded_tasks=[0])
        policy.on_answer("w1", 0, Label.NO)  # silently ignored
        assert policy.all_answers() == []

    def test_completed_tasks_listing(self):
        tasks = make_tasks(2)
        policy = RandomMV(tasks, k=1, seed=0)
        policy.on_answer("w1", 0, Label.YES)
        assert policy.completed_tasks() == [0]


class TestRandomEM:
    def test_em_aggregation_on_unanimous_data(self):
        tasks = make_tasks(2)
        policy = RandomEM(tasks, k=3, seed=0)
        for task_id in (0, 1):
            for worker in ("w1", "w2", "w3"):
                policy.on_answer(worker, task_id, tasks[task_id].truth)
        predictions = policy.predictions()
        assert predictions[0] == tasks[0].truth
        assert predictions[1] == tasks[1].truth

    def test_empty_predictions_fall_back_to_majority(self):
        tasks = make_tasks(2)
        policy = RandomEM(tasks, k=3, seed=0)
        predictions = policy.predictions()
        assert set(predictions) == {0, 1}

    def test_excluded_tasks_remain_truth(self):
        tasks = make_tasks(3)
        policy = RandomEM(tasks, k=3, seed=0, excluded_tasks=[1])
        for worker in ("w1", "w2", "w3"):
            policy.on_answer(worker, 0, Label.NO)
        assert policy.predictions()[1] == tasks[1].truth
