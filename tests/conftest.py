"""Shared fixtures: small task sets, graphs and worker populations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GraphConfig, ICrowdConfig
from repro.core.graph import SimilarityGraph
from repro.core.types import Label, Task, TaskSet


@pytest.fixture
def paper_tasks() -> TaskSet:
    """The twelve running-example microtasks of the paper's Table 1.

    Texts are the token sets of Table 1's third column; domains follow
    the paper's narrative (iPhone / iPod / iPad subgraphs of Figure 3).
    """
    rows = [
        ("iphone 4 wifi 32gb four 3g black", "iphone"),
        ("ipod touch 32gb wifi headphone", "ipod"),
        ("ipad 3 wifi 32gb black new cover white", "ipad"),
        ("iphone four wifi 16gb 3g", "iphone"),
        ("iphone 4 case black wifi 32gb", "iphone"),
        ("iphone 4 wifi 32gb four", "iphone"),
        ("ipod touch 32gb wifi case black", "ipod"),
        ("ipod touch nano headphone", "ipod"),
        ("ipod touch wifi nano headphone", "ipod"),
        ("ipad 3 wifi 32gb black iphone 4 cover white", "ipad"),
        ("ipad 4 wifi 16gb retina display", "ipad"),
        ("ipad 3 cover white new", "ipad"),
    ]
    return TaskSet(
        [
            Task(
                task_id=i,
                text=text,
                domain=domain,
                truth=Label.YES if i % 2 == 0 else Label.NO,
            )
            for i, (text, domain) in enumerate(rows)
        ]
    )


@pytest.fixture
def paper_graph(paper_tasks) -> SimilarityGraph:
    """Jaccard similarity graph over the Table 1 tasks (threshold 0.3)."""
    return SimilarityGraph.from_tasks(
        list(paper_tasks), GraphConfig(measure="jaccard", threshold=0.3)
    )


@pytest.fixture
def line_graph() -> SimilarityGraph:
    """A 5-node path graph with unit weights (easy to reason about)."""
    edges = [(i, i + 1, 1.0) for i in range(4)]
    return SimilarityGraph.from_edges(5, edges)


@pytest.fixture
def two_cliques() -> SimilarityGraph:
    """Two disjoint triangles: {0,1,2} and {3,4,5}."""
    edges = [
        (0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0),
        (3, 4, 1.0), (4, 5, 1.0), (3, 5, 1.0),
    ]
    return SimilarityGraph.from_edges(6, edges)


@pytest.fixture
def tiny_config() -> ICrowdConfig:
    """A small-but-valid framework configuration for unit tests."""
    from repro.core.config import (
        AssignerConfig,
        EstimatorConfig,
        QualificationConfig,
    )

    return ICrowdConfig(
        estimator=EstimatorConfig(alpha=1.0),
        assigner=AssignerConfig(k=3),
        qualification=QualificationConfig(
            num_qualification=2, qualification_threshold=0.5
        ),
        graph=GraphConfig(measure="jaccard", threshold=0.3),
        seed=0,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
