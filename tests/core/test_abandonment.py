"""Unit tests for assignment release and expiry (returned HITs)."""

import pytest

from repro.core.framework import ICrowd
from repro.core.types import Label


@pytest.fixture
def framework(paper_tasks, paper_graph, tiny_config):
    framework = ICrowd(
        paper_tasks, tiny_config, graph=paper_graph,
        qualification_tasks=[0, 1],
    )
    # one qualified worker
    framework.on_answer("w1", 0, paper_tasks[0].truth)
    framework.on_answer("w1", 1, paper_tasks[1].truth)
    return framework


class TestReleaseAssignment:
    def test_release_reopens_slot(self, framework):
        assignment = framework.on_worker_request("w1")
        task_id = assignment.task_id
        state = framework._states[task_id]
        assert "w1" in state.assigned_workers
        assert framework.release_assignment("w1", task_id) is True
        assert "w1" not in state.assigned_workers
        assert (("w1", task_id)) not in framework.pending_assignments()

    def test_release_unknown_pair(self, framework):
        assert framework.release_assignment("ghost", 5) is False

    def test_answer_clears_pending(self, framework):
        assignment = framework.on_worker_request("w1")
        framework.on_answer("w1", assignment.task_id, Label.YES)
        assert framework.pending_assignments() == {}

    def test_released_task_can_be_reassigned(self, framework):
        assignment = framework.on_worker_request("w1")
        framework.release_assignment("w1", assignment.task_id)
        again = framework.on_worker_request("w1")
        assert again is not None  # the worker is eligible again


class TestExpiry:
    def test_expires_only_stale(self, framework):
        first = framework.on_worker_request("w1")
        # advance the clock with unrelated requests
        for _ in range(5):
            framework.on_worker_request("w2")
        released = framework.expire_stale_assignments(max_age=3)
        assert ("w1", first.task_id) in released
        assert framework.pending_assignments() == {}

    def test_fresh_assignments_survive(self, framework):
        assignment = framework.on_worker_request("w1")
        released = framework.expire_stale_assignments(max_age=10)
        assert released == []
        assert (
            ("w1", assignment.task_id) in framework.pending_assignments()
        )

    def test_validates_max_age(self, framework):
        with pytest.raises(ValueError):
            framework.expire_stale_assignments(max_age=-1)


class TestPlatformAbandonment:
    def test_job_completes_under_abandonment(self):
        from repro.experiments.runner import build_policy
        from repro.experiments.setups import make_setup
        from repro.platform import SimulatedPlatform

        setup = make_setup(
            "itemcompare", seed=31, scale=0.1, num_workers=12
        )
        policy = build_policy("iCrowd", setup)
        platform = SimulatedPlatform(
            setup.tasks,
            setup.fresh_pool("abandon"),
            policy,
            abandonment=0.15,
            assignment_timeout=20,
            seed=31,
        )
        report = platform.run()
        assert report.finished, "abandonment starved the job"

    def test_validates_parameters(self):
        from repro.experiments.runner import build_policy
        from repro.experiments.setups import make_setup
        from repro.platform import SimulatedPlatform

        setup = make_setup(
            "itemcompare", seed=31, scale=0.1, num_workers=12
        )
        policy = build_policy("RandomMV", setup)
        with pytest.raises(ValueError):
            SimulatedPlatform(
                setup.tasks, setup.fresh_pool("x"), policy,
                abandonment=1.0,
            )
        with pytest.raises(ValueError):
            SimulatedPlatform(
                setup.tasks, setup.fresh_pool("x"), policy,
                assignment_timeout=0,
            )
