"""Unit tests for adaptive assignment (Section 4)."""

import numpy as np
import pytest

from repro.core.assigner import (
    AdaptiveAssigner,
    TaskState,
    TopWorkerSet,
    compute_top_worker_set,
    compute_top_worker_sets,
    compute_top_worker_sets_fast,
    greedy_assign,
    scheme_value,
)
from repro.core.config import AssignerConfig


def accuracies_from(matrix: dict[str, list[float]]):
    return {w: np.array(v) for w, v in matrix.items()}


def make_candidate(task_id, workers):
    return TopWorkerSet(task_id=task_id, workers=tuple(workers))


class TestTopWorkerSet:
    def test_scores(self):
        cand = make_candidate(0, [("a", 0.8), ("b", 0.6)])
        assert cand.sum_accuracy == pytest.approx(1.4)
        assert cand.avg_accuracy == pytest.approx(0.7)
        assert cand.worker_ids == {"a", "b"}

    def test_empty_avg_is_zero(self):
        assert make_candidate(0, []).avg_accuracy == 0.0


class TestTaskState:
    def test_remaining(self):
        state = TaskState(task_id=0, k=3, assigned_workers={"a"})
        assert state.remaining == 2

    def test_remaining_never_negative(self):
        state = TaskState(task_id=0, k=1, assigned_workers={"a", "b"})
        assert state.remaining == 0

    def test_has_seen_includes_tests(self):
        state = TaskState(task_id=0, k=3, tested_workers={"t"})
        assert state.has_seen("t")
        assert not state.has_seen("x")

    def test_eligible_excludes_seen(self):
        state = TaskState(
            task_id=0, k=3, assigned_workers={"a"}, tested_workers={"b"}
        )
        assert state.eligible(["a", "b", "c"]) == ["c"]


class TestComputeTopWorkerSet:
    def test_paper_table3_t4(self):
        """Table 3: t4 has no assigned workers; top-3 by accuracy."""
        acc = accuracies_from(
            {
                "w1": [0.6],
                "w2": [0.5],
                "w3": [0.3],
                "w4": [0.7],
                "w5": [0.75],
            }
        )
        state = TaskState(task_id=0, k=3)
        top = compute_top_worker_set(
            state, ["w1", "w2", "w3", "w4", "w5"], acc
        )
        assert [w for w, _ in top.workers] == ["w5", "w4", "w1"]

    def test_partial_assignment_shrinks_set(self):
        """Table 3: t11 already assigned to w2 → only k'=2 slots."""
        acc = accuracies_from(
            {"w1": [0.6], "w3": [0.8], "w5": [0.85]}
        )
        state = TaskState(task_id=0, k=3, assigned_workers={"w2"})
        top = compute_top_worker_set(state, ["w1", "w3", "w5"], acc)
        assert [w for w, _ in top.workers] == ["w5", "w3"]

    def test_completed_task_gives_none(self):
        acc = accuracies_from({"w1": [0.6]})
        state = TaskState(task_id=0, k=3, completed=True)
        assert compute_top_worker_set(state, ["w1"], acc) is None

    def test_no_eligible_workers_gives_none(self):
        acc = accuracies_from({"w1": [0.6]})
        state = TaskState(task_id=0, k=3, assigned_workers={"w1"})
        assert compute_top_worker_set(state, ["w1"], acc) is None

    def test_tie_breaks_by_worker_id(self):
        acc = accuracies_from({"b": [0.7], "a": [0.7], "c": [0.7]})
        state = TaskState(task_id=0, k=2)
        top = compute_top_worker_set(state, ["b", "a", "c"], acc)
        assert [w for w, _ in top.workers] == ["a", "b"]


class TestFastTopWorkerSets:
    def test_agrees_with_reference(self, rng):
        num_tasks, num_workers = 12, 7
        workers = [f"w{i}" for i in range(num_workers)]
        acc = {
            w: rng.uniform(0.2, 0.95, size=num_tasks) for w in workers
        }
        states = []
        for t in range(num_tasks):
            assigned = set(
                rng.choice(workers, size=rng.integers(0, 3), replace=False)
            )
            states.append(
                TaskState(
                    task_id=t,
                    k=3,
                    assigned_workers=assigned,
                    completed=bool(rng.random() < 0.2),
                )
            )
        slow = compute_top_worker_sets(states, workers, acc)
        fast = compute_top_worker_sets_fast(states, workers, acc)
        assert len(slow) == len(fast)
        for s, f in zip(slow, fast):
            assert s.task_id == f.task_id
            assert [w for w, _ in s.workers] == [w for w, _ in f.workers]
            for (_, ps), (_, pf) in zip(s.workers, f.workers):
                assert ps == pytest.approx(pf)

    def test_empty_workers(self):
        assert compute_top_worker_sets_fast([], [], {}) == []


class TestGreedyAssign:
    def test_paper_table3_walkthrough(self):
        """Section 4.2's example: greedy picks t11 then t9."""
        candidates = [
            make_candidate(4, [("w5", 0.75), ("w4", 0.7), ("w1", 0.6)]),
            make_candidate(11, [("w5", 0.85), ("w3", 0.8)]),
            make_candidate(9, [("w4", 0.85), ("w2", 0.75), ("w1", 0.7)]),
            make_candidate(10, [("w3", 0.7), ("w1", 0.6)]),
        ]
        scheme = greedy_assign(candidates)
        assert [c.task_id for c in scheme] == [11, 9]

    def test_disjointness_invariant(self, rng):
        workers = [f"w{i}" for i in range(10)]
        candidates = []
        for t in range(30):
            chosen = rng.choice(workers, size=3, replace=False)
            candidates.append(
                make_candidate(
                    t, [(w, float(rng.uniform(0.3, 0.9))) for w in chosen]
                )
            )
        scheme = greedy_assign(candidates)
        used = set()
        for selected in scheme:
            assert not (selected.worker_ids & used)
            used |= selected.worker_ids

    def test_maximality(self, rng):
        """No rejected candidate remains addable (greedy is maximal)."""
        workers = [f"w{i}" for i in range(8)]
        candidates = []
        for t in range(20):
            chosen = rng.choice(workers, size=2, replace=False)
            candidates.append(
                make_candidate(
                    t, [(w, float(rng.uniform(0.3, 0.9))) for w in chosen]
                )
            )
        scheme = greedy_assign(candidates)
        used = set().union(*(c.worker_ids for c in scheme))
        chosen_tasks = {c.task_id for c in scheme}
        for candidate in candidates:
            if candidate.task_id in chosen_tasks:
                continue
            assert candidate.worker_ids & used

    def test_empty_input(self):
        assert greedy_assign([]) == []

    def test_scheme_value(self):
        scheme = [
            make_candidate(0, [("a", 0.5), ("b", 0.5)]),
            make_candidate(1, [("c", 0.9)]),
        ]
        assert scheme_value(scheme) == pytest.approx(1.9)


class TestAdaptiveAssigner:
    def make_states(self):
        return [TaskState(task_id=t, k=3) for t in range(4)]

    def test_assign_respects_one_task_per_worker(self):
        acc = accuracies_from(
            {
                "w1": [0.9, 0.1, 0.1, 0.1],
                "w2": [0.8, 0.2, 0.1, 0.1],
                "w3": [0.7, 0.3, 0.1, 0.1],
            }
        )
        assigner = AdaptiveAssigner(AssignerConfig(k=3))
        assignments = assigner.assign(
            self.make_states(), ["w1", "w2", "w3"], acc
        )
        workers = [a.worker_id for a in assignments]
        assert len(workers) == len(set(workers))

    def test_assign_for_worker_returns_own_assignment(self):
        acc = accuracies_from(
            {
                "w1": [0.9, 0.1, 0.1, 0.1],
                "w2": [0.8, 0.2, 0.1, 0.1],
                "w3": [0.7, 0.3, 0.1, 0.1],
            }
        )
        assigner = AdaptiveAssigner(AssignerConfig(k=3))
        assignment = assigner.assign_for_worker(
            "w2", self.make_states(), ["w1", "w2", "w3"], acc
        )
        assert assignment is not None
        assert assignment.worker_id == "w2"
        assert assignment.task_id == 0  # everyone's best task

    def test_assign_for_worker_requires_active(self):
        assigner = AdaptiveAssigner()
        with pytest.raises(ValueError, match="not active"):
            assigner.assign_for_worker("ghost", [], ["w1"], {})

    def test_idle_worker_without_tester_gets_none(self):
        acc = accuracies_from(
            {
                "w1": [0.9],
                "w2": [0.8],
                "w3": [0.7],
                "w4": [0.1],
            }
        )
        states = [TaskState(task_id=0, k=3)]
        assigner = AdaptiveAssigner(AssignerConfig(k=3))
        assignment = assigner.assign_for_worker(
            "w4", states, ["w1", "w2", "w3", "w4"], acc
        )
        assert assignment is None
