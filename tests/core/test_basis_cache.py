"""Tests for the on-disk PPR basis cache and the estimator warm start."""

import numpy as np

from repro.core.config import EstimatorConfig
from repro.core.estimator import BASIS_CACHE_ENV, AccuracyEstimator
from repro.core.persistence import (
    basis_cache_key,
    basis_cache_path,
    load_basis,
    save_basis,
)
from repro.core.ppr import PPRBasis


class TestCacheKey:
    def test_deterministic(self, paper_graph):
        a = basis_cache_key(paper_graph.normalized, 0.5, 1e-6)
        b = basis_cache_key(paper_graph.normalized, 0.5, 1e-6)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_sensitive_to_every_input(self, paper_graph, line_graph):
        base = basis_cache_key(paper_graph.normalized, 0.5, 1e-6)
        assert basis_cache_key(paper_graph.normalized, 0.6, 1e-6) != base
        assert basis_cache_key(paper_graph.normalized, 0.5, 1e-7) != base
        assert basis_cache_key(line_graph.normalized, 0.5, 1e-6) != base

    def test_independent_of_csr_layout(self, paper_graph):
        """Equal matrix entries hash equally regardless of construction."""
        normalized = paper_graph.normalized
        rebuilt = normalized.tocoo().tocsr()
        assert basis_cache_key(rebuilt, 0.5, 1e-6) == basis_cache_key(
            normalized, 0.5, 1e-6
        )


class TestSaveLoad:
    def test_roundtrip_bit_identical(self, paper_graph, tmp_path):
        basis = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-8,
            method="push",
        )
        key = basis_cache_key(paper_graph.normalized, 0.5, 1e-8)
        path = save_basis(basis, tmp_path, key)
        assert path == basis_cache_path(tmp_path, key)
        assert path.exists()
        loaded = load_basis(tmp_path, key)
        assert loaded is not None
        assert np.array_equal(loaded.matrix.indptr, basis.matrix.indptr)
        assert np.array_equal(loaded.matrix.indices, basis.matrix.indices)
        assert np.array_equal(loaded.matrix.data, basis.matrix.data)

    def test_miss_returns_none(self, tmp_path):
        assert load_basis(tmp_path, "0" * 64) is None
        assert load_basis(tmp_path / "absent", "0" * 64) is None

    def test_no_tmp_files_left(self, paper_graph, tmp_path):
        basis = PPRBasis.compute(paper_graph.normalized, damping=0.5)
        save_basis(basis, tmp_path, "k" * 64)
        leftovers = [
            p for p in tmp_path.iterdir() if not p.suffix == ".npz"
        ]
        assert leftovers == []


class TestEstimatorWarmStart:
    def test_cold_then_warm(self, paper_graph, tmp_path):
        config = EstimatorConfig(basis_cache_dir=str(tmp_path))
        cold = AccuracyEstimator(paper_graph, config)
        cold.precompute()
        assert not cold.basis_from_cache
        warm = AccuracyEstimator(paper_graph, config)
        warm.precompute()
        assert warm.basis_from_cache
        assert np.array_equal(
            warm.basis.matrix.data, cold.basis.matrix.data
        )
        assert np.array_equal(
            warm.basis.matrix.indices, cold.basis.matrix.indices
        )

    def test_cached_estimates_identical(self, paper_graph, tmp_path):
        config = EstimatorConfig(basis_cache_dir=str(tmp_path))
        observed = {0: 1.0, 3: 0.0, 7: 1.0}
        cold = AccuracyEstimator(paper_graph, config)
        fresh = cold.estimate(observed)
        warm = AccuracyEstimator(paper_graph, config)
        assert np.array_equal(warm.estimate(observed), fresh)
        assert warm.basis_from_cache

    def test_config_change_misses_cache(self, paper_graph, tmp_path):
        AccuracyEstimator(
            paper_graph, EstimatorConfig(basis_cache_dir=str(tmp_path))
        ).precompute()
        other = AccuracyEstimator(
            paper_graph,
            EstimatorConfig(alpha=2.0, basis_cache_dir=str(tmp_path)),
        )
        other.precompute()
        assert not other.basis_from_cache

    def test_explicit_dir_beats_config(self, paper_graph, tmp_path):
        explicit = tmp_path / "explicit"
        configured = tmp_path / "configured"
        estimator = AccuracyEstimator(
            paper_graph,
            EstimatorConfig(basis_cache_dir=str(configured)),
            cache_dir=explicit,
        )
        estimator.precompute()
        assert any(explicit.iterdir())
        assert not configured.exists()

    def test_env_var_fallback(self, paper_graph, tmp_path, monkeypatch):
        monkeypatch.setenv(BASIS_CACHE_ENV, str(tmp_path))
        AccuracyEstimator(paper_graph).precompute()
        assert any(tmp_path.iterdir())
        warm = AccuracyEstimator(paper_graph)
        warm.precompute()
        assert warm.basis_from_cache

    def test_no_cache_dir_never_touches_disk(self, paper_graph, tmp_path):
        estimator = AccuracyEstimator(paper_graph)
        estimator.precompute()
        assert not estimator.basis_from_cache
        assert list(tmp_path.iterdir()) == []


class TestMassMemoisation:
    def test_mass_reused_for_same_support(self, paper_graph):
        estimator = AccuracyEstimator(paper_graph)
        calls = 0
        original = estimator.basis.combine

        def counting(q):
            nonlocal calls
            calls += 1
            return original(q)

        estimator.basis.combine = counting
        estimator.estimate({0: 1.0, 3: 0.0})
        first = calls  # raw + mass
        estimator.estimate({0: 0.0, 3: 1.0})  # same support, new values
        assert calls == first + 1  # only the raw combination
        estimator.estimate({0: 1.0, 5: 1.0})  # new support
        assert calls == first + 3

    def test_memoised_estimates_stay_correct(self, paper_graph):
        memo = AccuracyEstimator(paper_graph)
        fresh = AccuracyEstimator(paper_graph)
        warm_up = memo.estimate({0: 1.0, 3: 0.5})
        again = memo.estimate({0: 0.2, 3: 0.9})
        assert np.array_equal(
            again, fresh.estimate({0: 0.2, 3: 0.9})
        )
        assert warm_up.shape == again.shape

    def test_cache_bounded(self, paper_graph):
        from repro.core import estimator as mod

        est = AccuracyEstimator(paper_graph)
        limit = mod._MASS_CACHE_LIMIT
        mod_limit = 4
        try:
            mod._MASS_CACHE_LIMIT = mod_limit
            for i in range(mod_limit + 2):
                est.estimate({i % 12: 1.0, (i + 1) % 12: 0.5})
            assert len(est._mass_cache) <= mod_limit + 1
        finally:
            mod._MASS_CACHE_LIMIT = limit
