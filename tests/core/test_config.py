"""Unit tests for configuration validation and derived quantities."""

import pytest

from repro.core.config import (
    AssignerConfig,
    EstimatorConfig,
    GraphConfig,
    ICrowdConfig,
    QualificationConfig,
)


class TestEstimatorConfig:
    def test_defaults_match_paper(self):
        config = EstimatorConfig()
        assert config.alpha == 1.0  # Appendix D.2

    def test_damping_and_restart_sum_to_one(self):
        config = EstimatorConfig(alpha=2.0)
        assert config.damping + config.restart == pytest.approx(1.0)
        assert config.damping == pytest.approx(1.0 / 3.0)

    def test_damping_clamped_below_one_at_alpha_zero(self):
        config = EstimatorConfig(alpha=0.0)
        assert config.damping < 1.0

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            EstimatorConfig(alpha=-0.1)

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError, match="prior"):
            EstimatorConfig(prior_accuracy=1.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ppr_max_iter": 0},
            {"ppr_tol": 0.0},
            {"basis_epsilon": -1e-9},
        ],
    )
    def test_rejects_bad_numerics(self, kwargs):
        with pytest.raises(ValueError):
            EstimatorConfig(**kwargs)


class TestAssignerConfig:
    def test_default_k_is_three(self):
        assert AssignerConfig().k == 3  # Section 6.1

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError, match="k"):
            AssignerConfig(k=0)

    def test_rejects_bad_uncertainty_weight(self):
        with pytest.raises(ValueError):
            AssignerConfig(uncertainty_weight=1.2)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            AssignerConfig(active_window=0)


class TestQualificationConfig:
    def test_default_budget_is_ten(self):
        assert QualificationConfig().num_qualification == 10

    def test_rejects_unknown_selection(self):
        with pytest.raises(ValueError, match="selection"):
            QualificationConfig(selection="best")

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            QualificationConfig(qualification_threshold=-0.1)


class TestGraphConfig:
    def test_rejects_unknown_measure(self):
        with pytest.raises(ValueError, match="measure"):
            GraphConfig(measure="hamming")

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            GraphConfig(threshold=1.5)

    def test_rejects_single_topic(self):
        with pytest.raises(ValueError):
            GraphConfig(num_topics=1)

    def test_rejects_negative_neighbors(self):
        with pytest.raises(ValueError):
            GraphConfig(max_neighbors=-1)


class TestICrowdConfig:
    def test_with_k_only_changes_k(self):
        base = ICrowdConfig.paper_defaults()
        changed = base.with_k(5)
        assert changed.assigner.k == 5
        assert changed.estimator == base.estimator
        assert changed.qualification == base.qualification
        assert changed.graph == base.graph

    def test_with_alpha_only_changes_alpha(self):
        base = ICrowdConfig.paper_defaults()
        changed = base.with_alpha(5.0)
        assert changed.estimator.alpha == 5.0
        assert changed.assigner == base.assigner
        assert changed.estimator.prior_accuracy == base.estimator.prior_accuracy

    def test_paper_defaults_are_frozen(self):
        config = ICrowdConfig.paper_defaults()
        with pytest.raises(AttributeError):
            config.seed = 1
