"""Unit tests for confidence-based early stopping."""

import pytest

from repro.core.early_stop import EarlyStopICrowd
from repro.core.types import Label


@pytest.fixture
def framework(paper_tasks, paper_graph, tiny_config):
    framework = EarlyStopICrowd(
        paper_tasks,
        tiny_config,
        graph=paper_graph,
        qualification_tasks=[0, 1],
        confidence_threshold=0.6,
        min_votes=2,
    )
    # three perfectly-graded workers so estimates are confident
    for worker in ("w1", "w2", "w3"):
        framework.on_answer(worker, 0, paper_tasks[0].truth)
        framework.on_answer(worker, 1, paper_tasks[1].truth)
    return framework


class TestEarlyStop:
    def test_two_confident_agreeing_votes_complete_task(self, framework):
        framework.estimate_for("w1")
        framework.estimate_for("w2")
        framework.on_answer("w1", 5, Label.YES)
        assert 5 not in framework.completed_tasks()  # min_votes=2
        framework.on_answer("w2", 5, Label.YES)
        assert 5 in framework.completed_tasks()
        assert framework.predictions()[5] is Label.YES

    def test_disagreement_defers_to_more_votes(self, framework):
        framework.estimate_for("w1")
        framework.estimate_for("w2")
        framework.on_answer("w1", 5, Label.YES)
        framework.on_answer("w2", 5, Label.NO)
        assert 5 not in framework.completed_tasks()
        framework.on_answer("w3", 5, Label.NO)
        # k=3 reached → completes regardless
        assert 5 in framework.completed_tasks()
        assert framework.predictions()[5] is Label.NO

    def test_votes_spent_counts_non_test_answers(self, framework):
        framework.on_answer("w1", 5, Label.YES)
        framework.on_answer("w2", 7, Label.NO, is_test=True)
        assert framework.votes_spent() == 1

    def test_validation(self, paper_tasks, paper_graph, tiny_config):
        with pytest.raises(ValueError, match="confidence_threshold"):
            EarlyStopICrowd(
                paper_tasks, tiny_config, graph=paper_graph,
                qualification_tasks=[0, 1],
                confidence_threshold=0.4,
            )
        with pytest.raises(ValueError, match="min_votes"):
            EarlyStopICrowd(
                paper_tasks, tiny_config, graph=paper_graph,
                qualification_tasks=[0, 1],
                min_votes=0,
            )


class TestBudgetSavings:
    def test_spends_fewer_votes_than_fixed_k(self):
        """End to end: early stopping must save answers without a
        quality collapse."""
        from repro.experiments.runner import build_policy
        from repro.experiments.setups import make_setup
        from repro.platform import SimulatedPlatform

        setup = make_setup(
            "itemcompare", seed=17, scale=0.15, num_workers=14
        )
        fixed = build_policy("iCrowd", setup)
        fixed_report = SimulatedPlatform(
            setup.tasks, setup.fresh_pool("budget"), fixed
        ).run()
        early = EarlyStopICrowd(
            setup.tasks,
            setup.config,
            graph=setup.graph,
            qualification_tasks=list(setup.qualification_tasks),
            estimator=setup.estimator,
            confidence_threshold=0.7,
        )
        early_report = SimulatedPlatform(
            setup.tasks, setup.fresh_pool("budget"), early
        ).run()
        assert early_report.finished
        exclude = set(setup.qualification_tasks)
        fixed_votes = sum(
            1
            for e in fixed_report.events.answers()
            if not e.is_test and e.task_id not in exclude
        )
        assert early.votes_spent() < fixed_votes
        fixed_acc = fixed_report.accuracy(setup.tasks, exclude=exclude)
        early_acc = early_report.accuracy(setup.tasks, exclude=exclude)
        assert early_acc >= fixed_acc - 0.12
