"""Unit tests for the graph-based accuracy estimator (Section 3.1)."""

import numpy as np

from repro.core.config import EstimatorConfig
from repro.core.estimator import AccuracyEstimator


class TestEstimateRaw:
    def test_matches_direct_iteration(self, paper_graph):
        """Algorithm 1's basis path must equal Eq. (4) run directly."""
        estimator = AccuracyEstimator(
            paper_graph, EstimatorConfig(alpha=1.0, basis_epsilon=0.0)
        )
        observed = {0: 1.0, 1: 0.0, 2: 0.0, 5: 0.8}
        raw = estimator.estimate_raw(observed)
        exact = estimator.estimate_exact(observed)
        assert np.allclose(raw, exact, atol=1e-6)

    def test_empty_observation_gives_zero(self, paper_graph):
        estimator = AccuracyEstimator(paper_graph)
        assert np.allclose(estimator.estimate_raw({}), 0.0)


class TestEstimateCalibrated:
    def test_no_observations_returns_prior(self, paper_graph):
        config = EstimatorConfig(prior_accuracy=0.5)
        estimator = AccuracyEstimator(paper_graph, config)
        estimate = estimator.estimate({})
        assert np.allclose(estimate, 0.5)

    def test_estimates_in_unit_interval(self, paper_graph):
        estimator = AccuracyEstimator(paper_graph)
        estimate = estimator.estimate({0: 1.0, 1: 0.0, 7: 0.3})
        assert estimate.min() >= 0.0
        assert estimate.max() <= 1.0

    def test_propagates_to_similar_tasks(self, paper_tasks, paper_graph):
        """The paper's running intuition: correct on t1 (iPhone) →
        higher estimates on other iPhone tasks than on iPod/iPad ones."""
        estimator = AccuracyEstimator(paper_graph)
        # correct on t1, wrong on t2 (iPod) and t3 (iPad) — 0-indexed
        estimate = estimator.estimate({0: 1.0, 1: 0.0, 2: 0.0})
        iphone = [t.task_id for t in paper_tasks if t.domain == "iphone"]
        ipod = [t.task_id for t in paper_tasks if t.domain == "ipod"]
        mean_iphone = np.mean([estimate[i] for i in iphone])
        mean_ipod = np.mean([estimate[i] for i in ipod])
        assert mean_iphone > mean_ipod

    def test_unreached_tasks_sit_at_prior(self, two_cliques):
        config = EstimatorConfig(prior_accuracy=0.5)
        estimator = AccuracyEstimator(two_cliques, config)
        estimate = estimator.estimate({0: 1.0})
        # the other clique receives no evidence
        assert np.allclose(estimate[3:], 0.5)
        assert estimate[0] > 0.5

    def test_perfect_evidence_everywhere_saturates(self, two_cliques):
        estimator = AccuracyEstimator(two_cliques)
        estimate = estimator.estimate({i: 1.0 for i in range(6)})
        assert estimate.min() > 0.9

    def test_zero_evidence_pulls_below_prior(self, two_cliques):
        estimator = AccuracyEstimator(two_cliques)
        estimate = estimator.estimate({0: 0.0, 1: 0.0, 2: 0.0})
        assert estimate[0] < 0.5
        assert estimate[1] < 0.5

    def test_alpha_extremes(self, line_graph):
        """Large alpha keeps estimates near observations; small alpha
        smooths them across the graph (Appendix D.2's trade-off)."""
        observed = {0: 1.0}
        faithful = AccuracyEstimator(
            line_graph, EstimatorConfig(alpha=100.0)
        ).estimate(observed)
        smooth = AccuracyEstimator(
            line_graph, EstimatorConfig(alpha=0.01)
        ).estimate(observed)
        # faithful: nearly all signal stays on node 0
        assert faithful[0] > 0.95
        assert faithful[2] < 0.6
        # smooth: distant nodes receive much more of the signal
        assert smooth[2] > faithful[2]


class TestInfluenceSupport:
    def test_support_is_component(self, two_cliques):
        estimator = AccuracyEstimator(
            two_cliques, EstimatorConfig(basis_epsilon=1e-9)
        )
        support = estimator.influence_support(0)
        assert support == {0, 1, 2}

    def test_precompute_idempotent(self, line_graph):
        estimator = AccuracyEstimator(line_graph)
        estimator.precompute()
        basis_first = estimator.basis
        estimator.precompute()
        assert estimator.basis is basis_first
