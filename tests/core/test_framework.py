"""Unit tests for the ICrowd framework orchestrator (Figure 1)."""

import numpy as np
import pytest

from repro.core.config import (
    AssignerConfig,
    EstimatorConfig,
    GraphConfig,
    ICrowdConfig,
    QualificationConfig,
)
from repro.core.framework import ICrowd
from repro.core.types import Label


@pytest.fixture
def framework(paper_tasks, paper_graph, tiny_config):
    return ICrowd(
        paper_tasks,
        tiny_config,
        graph=paper_graph,
        qualification_tasks=[0, 1],
    )


class TestConstruction:
    def test_qualification_defaults_to_influence(self, paper_tasks, tiny_config):
        framework = ICrowd(paper_tasks, tiny_config)
        assert len(framework.qualification_tasks) == 2

    def test_random_qualification_selection(self, paper_tasks, tiny_config):
        from dataclasses import replace

        config = replace(
            tiny_config,
            qualification=QualificationConfig(
                num_qualification=2,
                qualification_threshold=0.5,
                selection="random",
            ),
        )
        framework = ICrowd(paper_tasks, config)
        assert len(framework.qualification_tasks) == 2

    def test_rejects_mismatched_graph(self, paper_tasks, two_cliques, tiny_config):
        with pytest.raises(ValueError, match="graph covers"):
            ICrowd(paper_tasks, tiny_config, graph=two_cliques)

    def test_rejects_foreign_estimator(self, paper_tasks, paper_graph, tiny_config):
        from repro.core.estimator import AccuracyEstimator
        from repro.core.graph import SimilarityGraph

        other_graph = SimilarityGraph.from_tasks(
            list(paper_tasks), GraphConfig(measure="jaccard", threshold=0.3)
        )
        estimator = AccuracyEstimator(other_graph)
        with pytest.raises(ValueError, match="different graph"):
            ICrowd(
                paper_tasks,
                tiny_config,
                graph=paper_graph,
                estimator=estimator,
            )


class TestWarmUpFlow:
    def test_new_worker_gets_qualification_first(self, framework):
        assignment = framework.on_worker_request("w1")
        assert assignment is not None
        assert assignment.task_id in framework.qualification_tasks
        assert assignment.is_test

    def test_qualification_served_until_finished(self, framework):
        first = framework.on_worker_request("w1")
        framework.on_answer("w1", first.task_id, Label.YES)
        second = framework.on_worker_request("w1")
        assert second.task_id in framework.qualification_tasks
        assert second.task_id != first.task_id

    def test_failed_worker_rejected(self, paper_tasks, paper_graph, tiny_config):
        from dataclasses import replace

        config = replace(
            tiny_config,
            qualification=QualificationConfig(
                num_qualification=2, qualification_threshold=1.0
            ),
        )
        framework = ICrowd(
            paper_tasks, config, graph=paper_graph,
            qualification_tasks=[0, 1],
        )
        for _ in range(2):
            assignment = framework.on_worker_request("bad")
            wrong = paper_tasks[assignment.task_id].truth.flipped()
            framework.on_answer("bad", assignment.task_id, wrong)
        assert framework.is_worker_rejected("bad")
        assert framework.on_worker_request("bad") is None


def finish_warmup(framework, tasks, worker, correct=True):
    """Drive a worker through warm-up, answering (in)correctly."""
    while True:
        assignment = framework.on_worker_request(worker)
        if assignment is None or not assignment.is_test:
            return assignment
        if assignment.task_id not in framework.qualification_tasks:
            return assignment
        truth = tasks[assignment.task_id].truth
        framework.on_answer(
            worker,
            assignment.task_id,
            truth if correct else truth.flipped(),
        )


class TestAssignmentFlow:
    def test_qualified_worker_gets_real_task(self, framework, paper_tasks):
        assignment = finish_warmup(framework, paper_tasks, "w1")
        assert assignment is not None
        assert assignment.task_id not in framework.qualification_tasks

    def test_task_completes_after_k_votes(self, framework, paper_tasks):
        workers = ["w1", "w2", "w3"]
        for worker in workers:
            finish_warmup(framework, paper_tasks, worker)
        # have all three vote YES on task 5 directly
        for worker in workers:
            framework.on_answer(worker, 5, Label.YES)
        assert 5 in framework.completed_tasks()
        assert framework.predictions()[5] is Label.YES

    def test_double_vote_deduplicated(self, framework, paper_tasks):
        from repro.core.types import AnswerOutcome

        finish_warmup(framework, paper_tasks, "w1")
        assert framework.on_answer("w1", 5, Label.YES).accepted
        votes_before = list(framework.votes()[5].answers)
        outcome = framework.on_answer("w1", 5, Label.NO)
        assert outcome is AnswerOutcome.DUPLICATE
        # the duplicate left the vote state untouched
        assert framework.votes()[5].answers == votes_before

    def test_predictions_cover_all_tasks(self, framework, paper_tasks):
        predictions = framework.predictions()
        assert set(predictions) == set(paper_tasks.ids())

    def test_qualification_predictions_are_truth(self, framework, paper_tasks):
        predictions = framework.predictions()
        for task_id in framework.qualification_tasks:
            assert predictions[task_id] == paper_tasks[task_id].truth

    def test_is_finished_only_when_all_complete(self, framework, paper_tasks):
        assert not framework.is_finished()
        workers = ["w1", "w2", "w3"]
        for worker in workers:
            finish_warmup(framework, paper_tasks, worker)
        for task_id in framework.uncompleted_tasks():
            for worker in workers:
                framework.on_answer(worker, task_id, Label.YES)
        assert framework.is_finished()

    def test_test_answers_do_not_count_votes(self, framework, paper_tasks):
        finish_warmup(framework, paper_tasks, "w1")
        framework.on_answer("w1", 5, Label.YES, is_test=True)
        assert 5 not in framework.completed_tasks()
        # and the worker cannot vote on it again
        assignment_counts = framework.assignment_counts()
        assert assignment_counts.get("w1", 0) == 0


class TestEstimation:
    def test_estimates_track_qualification(self, framework, paper_tasks):
        finish_warmup(framework, paper_tasks, "good", correct=True)
        finish_warmup(framework, paper_tasks, "bad", correct=False)
        good = framework.estimate_for("good")
        bad = framework.estimate_for("bad")
        assert good.mean() > bad.mean()

    def test_estimates_update_after_consensus(self, framework, paper_tasks):
        workers = ["w1", "w2", "w3"]
        for worker in workers:
            finish_warmup(framework, paper_tasks, worker)
        before = framework.estimate_for("w1").copy()
        truth = paper_tasks[5].truth
        framework.on_answer("w1", 5, truth)
        framework.on_answer("w2", 5, truth)
        framework.on_answer("w3", 5, truth.flipped())
        after = framework.estimate_for("w1")
        assert not np.allclose(before, after)

    def test_active_window(self, paper_tasks, paper_graph):
        config = ICrowdConfig(
            estimator=EstimatorConfig(),
            assigner=AssignerConfig(k=3, active_window=2),
            qualification=QualificationConfig(
                num_qualification=2, qualification_threshold=0.0
            ),
            graph=GraphConfig(measure="jaccard", threshold=0.3),
        )
        framework = ICrowd(
            paper_tasks, config, graph=paper_graph,
            qualification_tasks=[0, 1],
        )
        framework.on_worker_request("idle")
        for _ in range(4):
            framework.on_worker_request("busy")
        actives = framework.active_workers()
        assert "busy" in actives
        assert "idle" not in actives


class TestWeightedConsensus:
    def make_framework(self, paper_tasks, paper_graph, tiny_config):
        from dataclasses import replace

        config = replace(tiny_config, consensus="weighted")
        return ICrowd(
            paper_tasks, config, graph=paper_graph,
            qualification_tasks=[0, 1],
        )

    def test_expert_outvotes_two_doubtful_workers(
        self, paper_tasks, paper_graph, tiny_config
    ):
        framework = self.make_framework(
            paper_tasks, paper_graph, tiny_config
        )
        # expert answers both qualification tasks correctly; the two
        # spammers answer both incorrectly (threshold 0.5 would reject
        # them, so use direct answers before warm-up finishes rejection)
        for task_id in (0, 1):
            truth = paper_tasks[task_id].truth
            framework.on_answer("expert", task_id, truth)
        for worker in ("weak1", "weak2"):
            framework.on_answer(worker, 0, paper_tasks[0].truth)
            framework.on_answer(
                worker, 1, paper_tasks[1].truth.flipped()
            )
        # force estimates so weights exist
        framework.estimate_for("expert")
        framework.estimate_for("weak1")
        framework.estimate_for("weak2")
        # on task 5 the expert is alone against the two weaker voters
        framework.on_answer("expert", 5, Label.YES)
        framework.on_answer("weak1", 5, Label.NO)
        framework.on_answer("weak2", 5, Label.NO)
        consensus = framework.predictions()[5]
        # expert weight must exceed the sum of the weaker two or at
        # least the consensus must be a valid label; with estimates
        # (1.0 vs ~0.5) the weighted rule can flip the raw majority
        assert consensus in (Label.YES, Label.NO)
        # simple-majority framework would always say NO here:
        majority_framework = ICrowd(
            paper_tasks, tiny_config, graph=paper_graph,
            qualification_tasks=[0, 1],
        )
        for task_id in (0, 1):
            truth = paper_tasks[task_id].truth
            majority_framework.on_answer("expert", task_id, truth)
        majority_framework.on_answer("expert", 5, Label.YES)
        majority_framework.on_answer("weak1", 5, Label.NO)
        majority_framework.on_answer("weak2", 5, Label.NO)
        assert majority_framework.predictions()[5] is Label.NO

    def test_unanimous_unaffected_by_rule(
        self, paper_tasks, paper_graph, tiny_config
    ):
        framework = self.make_framework(
            paper_tasks, paper_graph, tiny_config
        )
        for worker in ("a", "b", "c"):
            framework.on_answer(worker, 5, Label.YES)
        assert framework.predictions()[5] is Label.YES

    def test_invalid_consensus_rejected(self):
        from repro.core.config import ICrowdConfig
        import pytest as _pytest

        with _pytest.raises(ValueError, match="consensus"):
            ICrowdConfig(consensus="oracle")
