"""Unit tests for the multi-choice framework orchestrator."""

import numpy as np
import pytest

from repro.core.config import GraphConfig, ICrowdConfig, QualificationConfig
from repro.core.framework_multi import MultiICrowd, MultiTask
from repro.utils.rng import spawn_rng

CHOICES = ("cat", "dog", "bird")


def make_tasks():
    """Twelve 3-choice tasks in two textual clusters."""
    rows = []
    for i in range(6):
        rows.append(
            MultiTask(
                task_id=i,
                text=f"animal farm barn picture {i} shared words",
                domain="farm",
                truth=CHOICES[i % 3],
            )
        )
    for i in range(6, 12):
        rows.append(
            MultiTask(
                task_id=i,
                text=f"pet city apartment photo {i} common tokens",
                domain="city",
                truth=CHOICES[i % 3],
            )
        )
    return rows


@pytest.fixture
def framework():
    config = ICrowdConfig(
        qualification=QualificationConfig(
            num_qualification=2, qualification_threshold=0.5
        ),
        graph=GraphConfig(measure="jaccard", threshold=0.3),
    )
    return MultiICrowd(
        make_tasks(), CHOICES, config, qualification_tasks=[0, 6]
    )


def finish_warmup(framework, worker, correct=True):
    tasks = {t.task_id: t for t in framework.tasks}
    while True:
        assignment = framework.on_worker_request(worker)
        if assignment is None or not assignment.is_test:
            return assignment
        if assignment.task_id not in framework.qualification_tasks:
            return assignment
        truth = tasks[assignment.task_id].truth
        answer = truth if correct else next(
            c for c in CHOICES if c != truth
        )
        framework.on_answer(worker, assignment.task_id, answer)


class TestConstruction:
    def test_validates_truth_in_choices(self):
        bad = [MultiTask(0, "x", "d", "dragon")]
        with pytest.raises(ValueError, match="not in"):
            MultiICrowd(bad, CHOICES)

    def test_validates_dense_ids(self):
        bad = [MultiTask(3, "x", "d", "cat")]
        with pytest.raises(ValueError, match="dense"):
            MultiICrowd(bad, CHOICES)

    def test_validates_choice_count(self):
        tasks = [MultiTask(0, "x", "d", "cat")]
        with pytest.raises(ValueError, match="two distinct"):
            MultiICrowd(tasks, ("cat",))

    def test_auto_qualification(self):
        config = ICrowdConfig(
            qualification=QualificationConfig(
                num_qualification=3, qualification_threshold=0.5
            ),
            graph=GraphConfig(measure="jaccard", threshold=0.3),
        )
        framework = MultiICrowd(make_tasks(), CHOICES, config)
        assert len(framework.qualification_tasks) == 3


class TestFlow:
    def test_warmup_then_assignment(self, framework):
        assignment = finish_warmup(framework, "w1")
        assert assignment is not None
        assert assignment.task_id not in framework.qualification_tasks

    def test_plurality_completion(self, framework):
        for worker in ("w1", "w2", "w3"):
            finish_warmup(framework, worker)
        framework.on_answer("w1", 2, "dog")
        framework.on_answer("w2", 2, "dog")
        framework.on_answer("w3", 2, "bird")
        assert 2 in framework.completed_tasks()
        assert framework.predictions()[2] == "dog"

    def test_rejection(self, framework):
        config_threshold = framework.warmup.threshold
        assert config_threshold == 0.5
        tasks = {t.task_id: t for t in framework.tasks}
        for _ in range(2):
            assignment = framework.on_worker_request("bad")
            truth = tasks[assignment.task_id].truth
            wrong = next(c for c in CHOICES if c != truth)
            framework.on_answer("bad", assignment.task_id, wrong)
        assert framework.is_worker_rejected("bad")
        assert framework.on_worker_request("bad") is None

    def test_estimates_separate_good_and_bad(self, framework):
        finish_warmup(framework, "good", correct=True)
        finish_warmup(framework, "bad2", correct=True)
        # bad2 then answers a completed task against consensus
        for worker in ("good", "bad2", "w3"):
            if worker == "w3":
                finish_warmup(framework, worker)
        framework.on_answer("good", 3, "cat")
        framework.on_answer("w3", 3, "cat")
        framework.on_answer("bad2", 3, "bird")
        good = framework.estimate_for("good")
        bad = framework.estimate_for("bad2")
        assert good.mean() > bad.mean()

    def test_full_job_completes(self):
        config = ICrowdConfig(
            qualification=QualificationConfig(
                num_qualification=2, qualification_threshold=0.0
            ),
            graph=GraphConfig(measure="jaccard", threshold=0.3),
        )
        tasks = make_tasks()
        framework = MultiICrowd(
            tasks, CHOICES, config, qualification_tasks=[0, 6]
        )
        rng = spawn_rng(1, "multi-full")
        truth = {t.task_id: t.truth for t in tasks}
        workers = [f"w{i}" for i in range(5)]

        def answer(worker, task_id):
            if rng.random() < 0.8:
                return truth[task_id]
            others = [c for c in CHOICES if c != truth[task_id]]
            return others[int(rng.integers(0, 2))]

        for _ in range(500):
            if framework.is_finished():
                break
            worker = workers[int(rng.integers(0, len(workers)))]
            assignment = framework.on_worker_request(worker, workers)
            if assignment is None:
                continue
            framework.on_answer(
                worker,
                assignment.task_id,
                answer(worker, assignment.task_id),
                assignment.is_test,
            )
        assert framework.is_finished()
        predictions = framework.predictions()
        accuracy = np.mean(
            [
                predictions[t.task_id] == t.truth
                for t in tasks
                if t.task_id not in framework.qualification_tasks
            ]
        )
        assert accuracy > 0.6
