"""Unit tests for the similarity graph (Section 3)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.config import GraphConfig
from repro.core.graph import SimilarityGraph


class TestConstruction:
    def test_from_matrix_thresholds(self):
        sim = np.array(
            [
                [0.0, 0.6, 0.2],
                [0.6, 0.0, 0.9],
                [0.2, 0.9, 0.0],
            ]
        )
        graph = SimilarityGraph.from_matrix(sim, threshold=0.5)
        assert graph.num_edges == 2
        assert graph.similarity(0, 2) == 0.0
        assert graph.similarity(1, 2) == pytest.approx(0.9)

    def test_threshold_keeps_equal_values(self):
        """The paper keeps pairs with similarity *not smaller than* the
        threshold."""
        sim = np.array([[0.0, 0.5], [0.5, 0.0]])
        graph = SimilarityGraph.from_matrix(sim, threshold=0.5)
        assert graph.num_edges == 1

    def test_diagonal_ignored(self):
        sim = np.array([[0.7, 0.6], [0.6, 0.7]])
        graph = SimilarityGraph.from_matrix(sim)
        assert graph.similarity(0, 0) == 0.0

    def test_rejects_asymmetric(self):
        matrix = sparse.csr_matrix(
            np.array([[0.0, 0.5], [0.4, 0.0]])
        )
        with pytest.raises(ValueError, match="symmetric"):
            SimilarityGraph(matrix)

    def test_rejects_negative(self):
        matrix = sparse.csr_matrix(
            np.array([[0.0, -0.5], [-0.5, 0.0]])
        )
        with pytest.raises(ValueError, match="non-negative"):
            SimilarityGraph(matrix)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            SimilarityGraph.from_matrix(np.zeros((2, 3)))

    def test_max_neighbors_bounds_edge_count(self):
        n = 10
        sim = np.ones((n, n)) * 0.5 + 0.01 * np.arange(n)[None, :]
        sim = (sim + sim.T) / 2
        graph = SimilarityGraph.from_matrix(sim, max_neighbors=3)
        # each node nominates at most max_neighbors edges; the union
        # re-symmetrisation therefore keeps at most n * max_neighbors
        # undirected edges (hub nodes may exceed the per-node bound,
        # as in any symmetric kNN graph)
        assert graph.num_edges <= n * 3
        full = SimilarityGraph.from_matrix(sim)
        assert graph.num_edges < full.num_edges

    def test_from_edges(self):
        graph = SimilarityGraph.from_edges(4, [(0, 1, 0.5), (2, 3, 0.7)])
        assert graph.num_edges == 2
        assert graph.similarity(1, 0) == pytest.approx(0.5)

    def test_from_edges_validates(self):
        with pytest.raises(ValueError, match="out of range"):
            SimilarityGraph.from_edges(2, [(0, 5, 0.5)])
        with pytest.raises(ValueError, match="positive"):
            SimilarityGraph.from_edges(2, [(0, 1, 0.0)])

    def test_from_edges_skips_self_loops(self):
        graph = SimilarityGraph.from_edges(3, [(1, 1, 0.9), (0, 1, 0.4)])
        assert graph.num_edges == 1


class TestNormalization:
    def test_normalized_formula(self, line_graph):
        """S' = D^{-1/2} S D^{-1/2} entrywise on the path graph."""
        normalized = line_graph.normalized.toarray()
        # node 0 has degree 1, node 1 has degree 2
        assert normalized[0, 1] == pytest.approx(1 / np.sqrt(1 * 2))
        assert normalized[1, 2] == pytest.approx(1 / np.sqrt(2 * 2))

    def test_normalized_symmetric(self, two_cliques):
        normalized = two_cliques.normalized.toarray()
        assert np.allclose(normalized, normalized.T)

    def test_spectral_radius_at_most_one(self, paper_graph):
        normalized = paper_graph.normalized.toarray()
        eigenvalues = np.linalg.eigvalsh(normalized)
        assert np.max(np.abs(eigenvalues)) <= 1.0 + 1e-9

    def test_isolated_node_row_is_zero(self):
        graph = SimilarityGraph.from_edges(3, [(0, 1, 1.0)])
        assert graph.normalized.getrow(2).nnz == 0


class TestAccessors:
    def test_neighbors_sorted_by_column(self, two_cliques):
        neighbors = dict(two_cliques.neighbors(0))
        assert set(neighbors) == {1, 2}

    def test_neighbors_out_of_range(self, two_cliques):
        with pytest.raises(ValueError):
            two_cliques.neighbors(99)

    def test_degree(self, two_cliques):
        assert two_cliques.degree(0) == pytest.approx(2.0)

    def test_connected_components(self, two_cliques):
        components = two_cliques.connected_components()
        assert sorted(map(sorted, components)) == [[0, 1, 2], [3, 4, 5]]

    def test_paper_graph_clusters_by_product(self, paper_tasks, paper_graph):
        """The Table 1 Jaccard graph must separate iPhone/iPod/iPad
        tasks into connected groups dominated by their domain."""
        components = paper_graph.connected_components()
        # all iPod tasks end up connected to each other
        ipod_ids = {t.task_id for t in paper_tasks if t.domain == "ipod"}
        containing = [c for c in components if c & ipod_ids]
        assert len(containing) == 1


class TestFromTasks:
    def test_respects_config(self, paper_tasks):
        sparse_graph = SimilarityGraph.from_tasks(
            list(paper_tasks), GraphConfig(measure="jaccard", threshold=0.9)
        )
        dense_graph = SimilarityGraph.from_tasks(
            list(paper_tasks), GraphConfig(measure="jaccard", threshold=0.1)
        )
        assert sparse_graph.num_edges < dense_graph.num_edges
