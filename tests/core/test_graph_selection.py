"""Unit tests for unsupervised similarity selection."""

import pytest

from repro.core.config import GraphConfig
from repro.core.graph import SimilarityGraph
from repro.datasets import make_itemcompare, make_yahooqa
from repro.core.graph_selection import (
    GraphScore,
    score_graph,
    select_similarity,
)


class TestScoreGraph:
    def test_shattered_graph_scores_low(self):
        graph = SimilarityGraph.from_edges(20, [(0, 1, 1.0)])
        score = score_graph(graph, "jaccard", 0.5)
        assert score.score < 0.2
        assert score.giant_fraction == pytest.approx(0.1)

    def test_connected_moderate_degree_scores_high(self):
        # a ring plus chords: connected, degree ≈ 4
        edges = [(i, (i + 1) % 20, 1.0) for i in range(20)]
        edges += [(i, (i + 2) % 20, 1.0) for i in range(20)]
        graph = SimilarityGraph.from_edges(20, edges)
        score = score_graph(graph, "jaccard", 0.3, target_degree=4.0)
        assert score.giant_fraction == 1.0
        assert score.score > 0.8

    def test_near_complete_graph_penalised(self):
        n = 20
        edges = [
            (i, j, 1.0) for i in range(n) for j in range(i + 1, n)
        ]
        graph = SimilarityGraph.from_edges(n, edges)
        complete = score_graph(graph, "jaccard", 0.0, target_degree=6.0)
        ring = SimilarityGraph.from_edges(
            n,
            [(i, (i + 1) % n, 1.0) for i in range(n)]
            + [(i, (i + 2) % n, 1.0) for i in range(n)]
            + [(i, (i + 3) % n, 1.0) for i in range(n)],
        )
        moderate = score_graph(ring, "jaccard", 0.3, target_degree=6.0)
        assert moderate.score > complete.score

    def test_empty_graph(self):
        graph = SimilarityGraph.from_edges(5, [])
        score = score_graph(graph, "jaccard", 0.9)
        assert score.score == 0.0


class TestSelectSimilarity:
    def test_returns_config_from_grid(self):
        tasks = list(make_itemcompare(seed=1, tasks_per_domain=8))
        config, grid = select_similarity(
            tasks,
            measures=("jaccard",),
            thresholds=(0.2, 0.5, 0.9),
        )
        assert isinstance(config, GraphConfig)
        assert config.measure == "jaccard"
        assert config.threshold in (0.2, 0.5, 0.9)
        assert len(grid) == 3
        assert all(isinstance(s, GraphScore) for s in grid)
        # grid sorted descending
        scores = [s.score for s in grid]
        assert scores == sorted(scores, reverse=True)

    def test_yahooqa_selection_yields_connected_graph(self):
        """On the fragmented-QA corpus the selector must avoid the
        thresholds that shatter the graph (DESIGN.md §5)."""
        tasks = list(make_yahooqa(seed=1))
        config, grid = select_similarity(tasks)
        graph = SimilarityGraph.from_tasks(tasks, config)
        giant = max(len(c) for c in graph.connected_components())
        assert giant / len(tasks) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            select_similarity([])
        tasks = list(make_itemcompare(seed=1, tasks_per_domain=5))
        with pytest.raises(ValueError):
            select_similarity(tasks, measures=())
