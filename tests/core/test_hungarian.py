"""Unit tests for the Hungarian algorithm and matching assigner."""

import itertools

import numpy as np
import pytest

from repro.core.assigner import TaskState
from repro.core.hungarian import (
    MatchingAssigner,
    hungarian,
    max_accuracy_matching,
)


def brute_force_min(cost):
    """Exact minimum assignment by permutation enumeration."""
    n_rows, n_cols = cost.shape
    best = None
    for columns in itertools.permutations(range(n_cols), n_rows):
        total = sum(cost[i, j] for i, j in enumerate(columns))
        if best is None or total < best:
            best = total
    return best


class TestHungarian:
    def test_identity_matrix(self):
        cost = np.array(
            [
                [0.0, 9.0, 9.0],
                [9.0, 0.0, 9.0],
                [9.0, 9.0, 0.0],
            ]
        )
        pairs = hungarian(cost)
        assert pairs == [(0, 0), (1, 1), (2, 2)]

    def test_classic_example(self):
        cost = np.array(
            [
                [4.0, 1.0, 3.0],
                [2.0, 0.0, 5.0],
                [3.0, 2.0, 2.0],
            ]
        )
        pairs = hungarian(cost)
        total = sum(cost[i, j] for i, j in pairs)
        assert total == pytest.approx(brute_force_min(cost))

    def test_rectangular(self):
        cost = np.array(
            [
                [5.0, 1.0, 7.0, 3.0],
                [6.0, 2.0, 2.0, 8.0],
            ]
        )
        pairs = hungarian(cost)
        assert len(pairs) == 2
        cols = [j for _, j in pairs]
        assert len(set(cols)) == 2
        total = sum(cost[i, j] for i, j in pairs)
        assert total == pytest.approx(brute_force_min(cost))

    def test_matches_brute_force_random(self, rng):
        for _ in range(20):
            n_rows = int(rng.integers(1, 5))
            n_cols = int(rng.integers(n_rows, 6))
            cost = rng.uniform(0, 10, size=(n_rows, n_cols))
            pairs = hungarian(cost)
            total = sum(cost[i, j] for i, j in pairs)
            assert total == pytest.approx(brute_force_min(cost))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="2-D"):
            hungarian(np.zeros(3))
        with pytest.raises(ValueError, match="n_rows"):
            hungarian(np.zeros((3, 2)))

    def test_negative_costs_supported(self):
        cost = np.array([[-5.0, 0.0], [0.0, -5.0]])
        pairs = hungarian(cost)
        total = sum(cost[i, j] for i, j in pairs)
        assert total == pytest.approx(-10.0)


class TestMaxAccuracyMatching:
    def test_maximises(self, rng):
        accuracy = rng.uniform(0, 1, size=(3, 5))
        pairs = max_accuracy_matching(accuracy)
        total = sum(accuracy[i, j] for i, j in pairs)
        best = max(
            sum(accuracy[i, j] for i, j in enumerate(cols))
            for cols in itertools.permutations(range(5), 3)
        )
        assert total == pytest.approx(best)


class TestMatchingAssigner:
    def test_one_task_per_worker(self):
        states = [TaskState(task_id=t, k=2) for t in range(3)]
        accuracies = {
            "a": np.array([0.9, 0.8, 0.1]),
            "b": np.array([0.7, 0.9, 0.2]),
        }
        assigner = MatchingAssigner()
        assignments = assigner.assign(states, ["a", "b"], accuracies)
        workers = [x.worker_id for x in assignments]
        assert len(workers) == len(set(workers)) == 2

    def test_prefers_high_accuracy_slots(self):
        states = [TaskState(task_id=t, k=1) for t in range(2)]
        accuracies = {
            "a": np.array([0.9, 0.2]),
            "b": np.array([0.3, 0.8]),
        }
        assigner = MatchingAssigner()
        assignments = {
            x.worker_id: x.task_id
            for x in assigner.assign(states, ["a", "b"], accuracies)
        }
        assert assignments == {"a": 0, "b": 1}

    def test_respects_has_seen(self):
        states = [TaskState(task_id=0, k=3, assigned_workers={"a"})]
        accuracies = {"a": np.array([0.99]), "b": np.array([0.4])}
        assigner = MatchingAssigner()
        assignments = assigner.assign(states, ["a", "b"], accuracies)
        assert all(x.worker_id != "a" for x in assignments)

    def test_no_slots(self):
        states = [TaskState(task_id=0, k=1, completed=True)]
        assigner = MatchingAssigner()
        assert assigner.assign(states, ["a"], {"a": np.array([0.5])}) == []

    def test_more_workers_than_slots(self):
        states = [TaskState(task_id=0, k=1)]
        accuracies = {
            "a": np.array([0.6]),
            "b": np.array([0.9]),
            "c": np.array([0.3]),
        }
        assigner = MatchingAssigner()
        assignments = assigner.assign(states, ["a", "b", "c"], accuracies)
        assert len(assignments) == 1
        assert assignments[0].worker_id == "b"
