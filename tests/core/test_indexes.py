"""Unit tests for the large-scale assignment indexes (Figure 10 path)."""

import numpy as np
import pytest

from repro.core.indexes import ScalableAssigner, SparseEstimateIndex
from repro.experiments.figures import _random_normalized_graph


class TestSparseEstimateIndex:
    def test_prior_for_unknown(self):
        index = SparseEstimateIndex(prior=0.5)
        assert index.value(7) == 0.5
        assert index.support_size == 0

    def test_update_and_pop(self):
        index = SparseEstimateIndex()
        index.update({1: 0.9, 2: 0.7, 3: 0.8})
        assert index.pop_best(set()) == 1
        assert index.pop_best({2}) == 3

    def test_stale_entries_skipped(self):
        index = SparseEstimateIndex()
        index.update({1: 0.9})
        index.update({1: 0.4, 2: 0.6})
        assert index.pop_best(set()) == 2

    def test_exhausted_returns_none(self):
        index = SparseEstimateIndex()
        index.update({1: 0.9})
        assert index.pop_best({1}) is None

    def test_observed_and_contains(self):
        index = SparseEstimateIndex(prior=0.5)
        assert not index.observed(1)
        assert 1 not in index
        index.update({1: 0.5})  # explicit entry, even at prior value
        assert index.observed(1)
        assert 1 in index
        assert not index.observed(2)

    def test_restore_repushes_popped_entry(self):
        index = SparseEstimateIndex()
        index.update({1: 0.4})
        assert index.pop_best(set()) == 1
        assert index.pop_best(set()) is None  # consumed
        index.restore(1)
        assert index.pop_best(set()) == 1

    def test_restore_outside_support_is_noop(self):
        index = SparseEstimateIndex()
        index.restore(9)
        assert index.pop_best(set()) is None


class TestScalableAssigner:
    def make_assigner(self, n=200, m=8, k=2, seed=0):
        normalized = _random_normalized_graph(n, m, seed)
        return ScalableAssigner(normalized, damping=0.5, k=k)

    def test_serves_every_task_to_completion(self):
        n, k = 60, 2
        assigner = self.make_assigner(n=n, k=k)
        workers = [f"w{i}" for i in range(6)]
        served = 0
        for r in range(n * k * 3):
            worker = workers[r % len(workers)]
            task = assigner.request(worker)
            if task is None:
                continue
            assigner.answer(worker, task, 0.8)
            served += 1
            if assigner.num_completed == n:
                break
        assert assigner.num_completed == n

    def test_no_worker_sees_task_twice(self):
        assigner = self.make_assigner(n=50, k=3)
        seen: dict[str, set[int]] = {}
        for r in range(200):
            worker = f"w{r % 5}"
            task = assigner.request(worker)
            if task is None:
                break
            assert task not in seen.setdefault(worker, set())
            seen[worker].add(task)
            assigner.answer(worker, task, 0.9)

    def test_completed_tasks_not_served(self):
        assigner = self.make_assigner(n=30, k=1)
        delivered = []
        for r in range(30):
            task = assigner.request(f"w{r}")
            assert task is not None
            assigner.answer(f"w{r}", task, 0.9)
            delivered.append(task)
        assert len(set(delivered)) == 30

    def test_observation_biases_toward_neighborhood(self):
        """After positive evidence at a task, the worker's next request
        should prefer the evidence neighbourhood over the frontier."""
        normalized = _random_normalized_graph(500, 10, seed=1)
        assigner = ScalableAssigner(normalized, damping=0.5, k=3)
        first = assigner.request("w")
        assigner.answer("w", first, 1.0)
        neighborhood = set(
            assigner._basis_cache[first]
        )
        second = assigner.request("w")
        assert second in neighborhood or second is not None

    def test_request_work_is_local(self):
        """Per-request touched state must not scale with |T| (the basis
        cache only holds pushed neighbourhoods)."""
        small = self.make_assigner(n=200, m=8)
        large = self.make_assigner(n=2000, m=8)
        for assigner in (small, large):
            for r in range(20):
                worker = f"w{r % 4}"
                task = assigner.request(worker)
                assigner.answer(worker, task, 0.8)
        small_support = sum(
            len(row) for row in small._basis_cache.values()
        ) / max(len(small._basis_cache), 1)
        large_support = sum(
            len(row) for row in large._basis_cache.values()
        ) / max(len(large._basis_cache), 1)
        # pushed supports are neighbourhood-sized in both cases
        assert large_support < 10 * small_support + 50

    def test_request_survives_frontier_fallthrough(self):
        """Regression: serving a frontier candidate after ``pop_best``
        popped a below-prior task used to consume that heap entry —
        the task then could never be served by estimate order."""
        from scipy import sparse

        normalized = sparse.csr_matrix((2, 2), dtype=np.float64)
        assigner = ScalableAssigner(normalized, damping=0.5, k=5)
        # drain task 0 from the shared frontier via another worker
        assert assigner.request("v") == 0
        assigner.observe("w", 0, 0.2)  # below-prior evidence
        # pop_best pops 0 (<= prior); frontier serves 1 instead
        assert assigner.request("w") == 1
        # the popped entry must be restored: 0 is still reachable
        assert assigner.request("w") == 0

    def test_validation(self):
        normalized = _random_normalized_graph(10, 3, seed=0)
        with pytest.raises(ValueError):
            ScalableAssigner(normalized, damping=0.5, k=0)


class TestRandomNormalizedGraph:
    def test_symmetric_and_bounded(self):
        import numpy as np

        normalized = _random_normalized_graph(300, 6, seed=9)
        diff = abs(normalized - normalized.T)
        assert diff.nnz == 0 or diff.max() < 1e-12
        assert normalized.data.min() > 0
        # spectral bound of symmetric normalisation
        eigenvalue = float(
            np.max(
                np.abs(
                    np.linalg.eigvalsh(
                        normalized[:60, :60].toarray()
                    )
                )
            )
        )
        assert eigenvalue <= 1.5  # principal submatrix is looser

    def test_deterministic(self):
        a = _random_normalized_graph(100, 5, seed=4)
        b = _random_normalized_graph(100, 5, seed=4)
        assert (a != b).nnz == 0


class TestFullPushMode:
    def test_neighborhood_only_false_uses_forward_push(self):
        normalized = _random_normalized_graph(150, 5, seed=2)
        assigner = ScalableAssigner(
            normalized, damping=0.5, k=2, neighborhood_only=False
        )
        first = assigner.request("w")
        assigner.answer("w", first, 1.0)
        # full push can reach beyond one hop
        row = assigner._basis_cache[first]
        one_hop = 1 + normalized.indptr[first + 1] - normalized.indptr[first]
        assert len(row) >= one_hop

    def test_modes_agree_on_direct_neighbors_sign(self):
        """Both inference modes push positive mass to direct
        neighbours of a positive observation."""
        normalized = _random_normalized_graph(80, 4, seed=3)
        for neighborhood_only in (True, False):
            assigner = ScalableAssigner(
                normalized,
                damping=0.5,
                k=2,
                neighborhood_only=neighborhood_only,
            )
            assigner.observe("w", 0, 1.0)
            index = assigner._indexes["w"]
            start, end = normalized.indptr[0], normalized.indptr[1]
            for j in normalized.indices[start:end]:
                assert index.value(int(j)) >= 0.5
