"""Unit tests for the multi-choice extension of the voting layer."""

import pytest

from repro.core.multichoice import (
    MultiVoteState,
    multichoice_observed_accuracy,
    plurality_vote,
)
from repro.core.observed import consensus_observed_accuracy
from repro.core.types import Label

CHOICES = ("red", "green", "blue")


class TestMultiVoteState:
    def make_state(self, k=3):
        return MultiVoteState(task_id=0, k=k, choices=CHOICES)

    def test_plurality_consensus(self):
        state = self.make_state()
        state.add("w1", "red")
        state.add("w2", "red")
        state.add("w3", "blue")
        assert state.is_complete()
        assert state.consensus() == "red"

    def test_tie_breaks_by_choice_order(self):
        state = self.make_state(k=2)
        state.add("w1", "blue")
        state.add("w2", "green")
        assert state.consensus() == "green"  # earlier in CHOICES

    def test_rejects_invalid_choice(self):
        state = self.make_state()
        with pytest.raises(ValueError, match="choice"):
            state.add("w1", "magenta")

    def test_rejects_double_vote(self):
        state = self.make_state()
        state.add("w1", "red")
        with pytest.raises(ValueError, match="already voted"):
            state.add("w1", "blue")

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiVoteState(task_id=0, k=0, choices=CHOICES)
        with pytest.raises(ValueError):
            MultiVoteState(task_id=0, k=3, choices=("only",))
        with pytest.raises(ValueError):
            MultiVoteState(task_id=0, k=3, choices=("a", "a"))


class TestPluralityVote:
    def test_batch_aggregation(self):
        votes = [
            (0, "w1", "red"), (0, "w2", "red"), (0, "w3", "blue"),
            (1, "w1", "green"), (1, "w2", "blue"), (1, "w3", "blue"),
        ]
        results = plurality_vote(votes, CHOICES)
        assert results == {0: "red", 1: "blue"}

    def test_empty(self):
        assert plurality_vote([], CHOICES) == {}


class TestMultichoiceObservedAccuracy:
    def test_reduces_to_binary_eq5(self):
        """At m=2 the generalisation must equal the paper's Eq. (5)."""
        votes_binary = [
            (Label.YES, 0.8),
            (Label.NO, 0.6),
            (Label.YES, 0.7),
        ]
        expected = consensus_observed_accuracy(
            Label.YES, Label.YES, votes_binary
        )
        votes_multi = [("yes", 0.8), ("no", 0.6), ("yes", 0.7)]
        value = multichoice_observed_accuracy(
            "yes", "yes", votes_multi, num_choices=2
        )
        assert value == pytest.approx(expected)

    def test_binary_disagree_case(self):
        votes_binary = [
            (Label.NO, 0.8),
            (Label.YES, 0.6),
            (Label.YES, 0.7),
        ]
        expected = consensus_observed_accuracy(
            Label.NO, Label.YES, votes_binary
        )
        votes_multi = [("no", 0.8), ("yes", 0.6), ("yes", 0.7)]
        value = multichoice_observed_accuracy(
            "no", "yes", votes_multi, num_choices=2
        )
        assert value == pytest.approx(expected)

    def test_unanimous_reliable_workers_near_one(self):
        votes = [("red", 0.9)] * 3
        value = multichoice_observed_accuracy(
            "red", "red", votes, num_choices=3
        )
        assert value > 0.95

    def test_minority_voter_scores_low(self):
        votes = [("red", 0.9), ("red", 0.9), ("blue", 0.9)]
        value = multichoice_observed_accuracy(
            "blue", "red", votes, num_choices=3
        )
        assert value < 0.2

    def test_in_unit_interval(self):
        votes = [("red", 1.0), ("blue", 0.0), ("green", 0.5)]
        value = multichoice_observed_accuracy(
            "green", "red", votes, num_choices=3
        )
        assert 0.0 <= value <= 1.0

    def test_more_choices_make_agreement_stronger(self):
        """With more alternatives, agreeing with the consensus is
        stronger evidence (a wrong pick lands on the consensus less
        often)."""
        votes3 = [("a", 0.7), ("a", 0.7), ("b", 0.7)]
        votes10 = list(votes3)
        value3 = multichoice_observed_accuracy(
            "a", "a", votes3, num_choices=3
        )
        value10 = multichoice_observed_accuracy(
            "a", "a", votes10, num_choices=10
        )
        assert value10 > value3

    def test_validation(self):
        with pytest.raises(ValueError):
            multichoice_observed_accuracy("a", "a", [], num_choices=1)
