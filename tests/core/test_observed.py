"""Unit tests for observed-accuracy estimation (Eq. 5, Section 3.2)."""

import pytest

from repro.core.observed import (
    ObservedAccuracyComputer,
    consensus_observed_accuracy,
)
from repro.core.types import Answer, Label


class TestConsensusObservedAccuracy:
    def test_paper_worked_example(self):
        """Section 3.2's q_6^{w1}: workers {w1, w2, w5}, w1 and w5 agree
        with consensus, w2 disagrees."""
        p1, p2, p5 = 0.8, 0.6, 0.7
        votes = [
            (Label.YES, p1),  # w1, agrees
            (Label.NO, p2),  # w2, disagrees
            (Label.YES, p5),  # w5, agrees
        ]
        expected = (p1 * p5 * (1 - p2)) / (
            p1 * p5 * (1 - p2) + (1 - p1) * (1 - p5) * p2
        )
        value = consensus_observed_accuracy(Label.YES, Label.YES, votes)
        assert value == pytest.approx(expected)

    def test_agree_and_disagree_sum_to_one(self):
        votes = [
            (Label.YES, 0.9),
            (Label.YES, 0.7),
            (Label.NO, 0.6),
        ]
        agree = consensus_observed_accuracy(Label.YES, Label.YES, votes)
        disagree = consensus_observed_accuracy(Label.NO, Label.YES, votes)
        assert agree + disagree == pytest.approx(1.0)

    def test_unanimous_high_accuracy_workers(self):
        votes = [(Label.YES, 0.9)] * 3
        value = consensus_observed_accuracy(Label.YES, Label.YES, votes)
        assert value > 0.99

    def test_agreeing_with_strong_majority_scores_high(self):
        votes = [
            (Label.YES, 0.9),
            (Label.YES, 0.9),
            (Label.NO, 0.5),
        ]
        agree = consensus_observed_accuracy(Label.YES, Label.YES, votes)
        disagree = consensus_observed_accuracy(Label.NO, Label.YES, votes)
        assert agree > 0.9
        assert disagree < 0.1

    def test_output_strictly_inside_unit_interval(self):
        votes = [(Label.YES, 1.0), (Label.NO, 0.0)]
        value = consensus_observed_accuracy(Label.YES, Label.YES, votes)
        assert 0.0 < value < 1.0

    def test_coin_flip_workers_give_half(self):
        votes = [(Label.YES, 0.5), (Label.NO, 0.5)]
        value = consensus_observed_accuracy(Label.YES, Label.YES, votes)
        assert value == pytest.approx(0.5)


class TestObservedAccuracyComputer:
    def make_computer(self):
        return ObservedAccuracyComputer(
            {0: Label.YES, 1: Label.NO}
        )

    def test_qualification_graded_exactly(self):
        computer = self.make_computer()
        answers = [
            Answer(0, "w1", Label.YES),  # correct
            Answer(1, "w1", Label.YES),  # incorrect
        ]
        observed = computer.compute(answers, {}, {}, lambda w, t: 0.5)
        assert observed == {0: 1.0, 1: 0.0}

    def test_incomplete_tasks_skipped(self):
        computer = self.make_computer()
        answers = [Answer(5, "w1", Label.YES)]
        observed = computer.compute(answers, {5: answers}, {}, lambda w, t: 0.5)
        assert observed == {}

    def test_consensus_task_uses_eq5(self):
        computer = self.make_computer()
        votes = [
            Answer(7, "w1", Label.YES),
            Answer(7, "w2", Label.YES),
            Answer(7, "w3", Label.NO),
        ]
        observed = computer.compute(
            [votes[0]],
            {7: votes},
            {7: Label.YES},
            lambda w, t: 0.8,
        )
        # P1 = .64, P̄1 = .04, P2 = .8, P̄2 = .2 → q = .128/.16 = 0.8
        assert observed[7] == pytest.approx(0.8)

    def test_minority_answer_scores_low(self):
        computer = self.make_computer()
        votes = [
            Answer(7, "w1", Label.NO),
            Answer(7, "w2", Label.YES),
            Answer(7, "w3", Label.YES),
        ]
        observed = computer.compute(
            [votes[0]],
            {7: votes},
            {7: Label.YES},
            lambda w, t: 0.8,
        )
        # complement of the agreeing case above
        assert observed[7] == pytest.approx(0.2)

    def test_accuracy_lookup_receives_covoters(self):
        computer = self.make_computer()
        votes = [
            Answer(3, "w1", Label.YES),
            Answer(3, "w2", Label.NO),
        ]
        seen = []

        def lookup(worker_id, task_id):
            seen.append((worker_id, task_id))
            return 0.7

        computer.compute([votes[0]], {3: votes}, {3: Label.YES}, lookup)
        assert ("w1", 3) in seen
        assert ("w2", 3) in seen

    def test_qualification_tasks_property(self):
        computer = self.make_computer()
        assert computer.qualification_tasks == {0, 1}
