"""Unit tests for the exact optimal-assignment solvers (Appendix D.4)."""

import pytest

from repro.core.assigner import TopWorkerSet, greedy_assign, scheme_value
from repro.core.optimal import (
    approximation_error,
    bitmask_optimal,
    enumerate_optimal,
)


def cand(task_id, workers):
    return TopWorkerSet(task_id=task_id, workers=tuple(workers))


def random_instance(rng, num_tasks=12, num_workers=6, set_size=2):
    workers = [f"w{i}" for i in range(num_workers)]
    candidates = []
    for t in range(num_tasks):
        chosen = rng.choice(workers, size=set_size, replace=False)
        candidates.append(
            cand(t, [(w, float(rng.uniform(0.3, 0.95))) for w in chosen])
        )
    return candidates


class TestEnumerateOptimal:
    def test_simple_disjoint(self):
        candidates = [
            cand(0, [("a", 0.9)]),
            cand(1, [("b", 0.8)]),
        ]
        value, scheme = enumerate_optimal(candidates)
        assert value == pytest.approx(1.7)
        assert {c.task_id for c in scheme} == {0, 1}

    def test_greedy_suboptimal_case(self):
        """Greedy by average accuracy can miss the optimum: a single
        high-average candidate blocks two medium ones."""
        candidates = [
            cand(0, [("a", 0.9), ("b", 0.9)]),  # avg .9, value 1.8
            cand(1, [("a", 0.85)]),  # value .85
            cand(2, [("b", 0.85)]),  # value .85
            cand(3, [("c", 0.5), ("d", 0.5)]),
        ]
        greedy = greedy_assign(candidates)
        opt_value, _ = enumerate_optimal(candidates)
        assert scheme_value(greedy) <= opt_value
        assert opt_value == pytest.approx(1.8 + 1.0)

    def test_empty(self):
        value, scheme = enumerate_optimal([])
        assert value == 0.0
        assert scheme == []

    def test_all_conflicting(self):
        candidates = [
            cand(0, [("a", 0.9)]),
            cand(1, [("a", 0.8)]),
            cand(2, [("a", 0.99)]),
        ]
        value, scheme = enumerate_optimal(candidates)
        assert value == pytest.approx(0.99)
        assert len(scheme) == 1

    def test_rejects_duplicate_worker_in_candidate(self):
        bad = cand(0, [("a", 0.5), ("a", 0.6)])
        with pytest.raises(ValueError, match="repeats"):
            enumerate_optimal([bad])


class TestBitmaskOptimal:
    def test_agrees_with_enumeration(self, rng):
        for trial in range(10):
            candidates = random_instance(
                rng,
                num_tasks=int(rng.integers(4, 14)),
                num_workers=int(rng.integers(3, 8)),
                set_size=int(rng.integers(1, 4)),
            )
            v_enum, _ = enumerate_optimal(candidates)
            v_mask, _ = bitmask_optimal(candidates)
            assert v_mask == pytest.approx(v_enum)

    def test_scheme_is_feasible(self, rng):
        candidates = random_instance(rng)
        _, scheme = bitmask_optimal(candidates)
        used = set()
        for selected in scheme:
            assert not (selected.worker_ids & used)
            used |= selected.worker_ids

    def test_rejects_too_many_workers(self):
        candidates = [
            cand(i, [(f"w{i}", 0.5)]) for i in range(30)
        ]
        with pytest.raises(ValueError, match="24"):
            bitmask_optimal(candidates)


class TestApproximationError:
    def test_zero_when_greedy_optimal(self):
        candidates = [cand(0, [("a", 0.9)]), cand(1, [("b", 0.8)])]
        greedy = greedy_assign(candidates)
        assert approximation_error(candidates, greedy) == pytest.approx(0.0)

    def test_error_is_percentage(self):
        candidates = [
            cand(0, [("a", 0.9), ("b", 0.9)]),
            cand(1, [("a", 0.85)]),
            cand(2, [("b", 0.85)]),
        ]
        greedy = greedy_assign(candidates)
        error = approximation_error(candidates, greedy)
        assert 0.0 <= error <= 100.0

    def test_greedy_never_beats_optimum(self, rng):
        for _ in range(20):
            candidates = random_instance(
                rng,
                num_tasks=int(rng.integers(3, 10)),
                num_workers=5,
                set_size=2,
            )
            greedy = greedy_assign(candidates)
            error = approximation_error(candidates, greedy)
            assert error >= -1e-9

    def test_empty_instance(self):
        assert approximation_error([], []) == 0.0

    def test_unknown_solver(self):
        with pytest.raises(ValueError, match="solver"):
            approximation_error([], [], solver="brute")

    def test_enumerate_solver_path(self):
        candidates = [cand(0, [("a", 0.9)])]
        greedy = greedy_assign(candidates)
        error = approximation_error(candidates, greedy, solver="enumerate")
        assert error == pytest.approx(0.0)
