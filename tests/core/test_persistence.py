"""Unit tests for checkpoint/restore of a live iCrowd job."""

import json

import numpy as np
import pytest

from repro.core.framework import ICrowd
from repro.core.persistence import (
    CHECKPOINT_VERSION,
    checkpoint_state,
    load_checkpoint,
    restore_state,
    save_checkpoint,
)
from repro.core.types import Label


@pytest.fixture
def live_framework(paper_tasks, paper_graph, tiny_config):
    """A framework with warm-up progress, votes and a consensus."""
    framework = ICrowd(
        paper_tasks, tiny_config, graph=paper_graph,
        qualification_tasks=[0, 1],
    )
    # worker w1 finishes warm-up correctly; w2 gets one wrong
    framework.on_answer("w1", 0, paper_tasks[0].truth)
    framework.on_answer("w1", 1, paper_tasks[1].truth)
    framework.on_answer("w2", 0, paper_tasks[0].truth.flipped())
    framework.on_answer("w2", 1, paper_tasks[1].truth)
    # one consensus task completes (k=3)
    for worker in ("w1", "w2", "w3"):
        framework.on_answer(worker, 5, Label.YES)
    # one in-flight task
    framework.on_answer("w1", 7, Label.NO)
    # a test answer
    framework.on_answer("w2", 5, Label.NO, is_test=True)
    return framework


def rebuild(framework, paper_tasks, paper_graph, tiny_config, tmp_path):
    path = tmp_path / "checkpoint.json"
    save_checkpoint(framework, path)
    return load_checkpoint(
        paper_tasks, tiny_config, path, graph=paper_graph
    )


class TestRoundTrip:
    def test_checkpoint_is_json(self, live_framework, tmp_path):
        path = tmp_path / "c.json"
        save_checkpoint(live_framework, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == CHECKPOINT_VERSION

    def test_predictions_identical(
        self, live_framework, paper_tasks, paper_graph, tiny_config,
        tmp_path,
    ):
        restored = rebuild(
            live_framework, paper_tasks, paper_graph, tiny_config,
            tmp_path,
        )
        assert restored.predictions() == live_framework.predictions()

    def test_completed_and_votes_identical(
        self, live_framework, paper_tasks, paper_graph, tiny_config,
        tmp_path,
    ):
        restored = rebuild(
            live_framework, paper_tasks, paper_graph, tiny_config,
            tmp_path,
        )
        assert restored.completed_tasks() == live_framework.completed_tasks()
        for task_id, vote_state in live_framework.votes().items():
            restored_votes = restored.votes()[task_id]
            assert [
                (a.worker_id, a.label) for a in restored_votes.answers
            ] == [(a.worker_id, a.label) for a in vote_state.answers]

    def test_estimates_recomputed_identically(
        self, live_framework, paper_tasks, paper_graph, tiny_config,
        tmp_path,
    ):
        original = live_framework.estimate_for("w1").copy()
        restored = rebuild(
            live_framework, paper_tasks, paper_graph, tiny_config,
            tmp_path,
        )
        assert np.allclose(restored.estimate_for("w1"), original)

    def test_warmup_progress_survives(
        self, live_framework, paper_tasks, paper_graph, tiny_config,
        tmp_path,
    ):
        restored = rebuild(
            live_framework, paper_tasks, paper_graph, tiny_config,
            tmp_path,
        )
        assert restored.warmup.has_finished("w1")
        assert restored.warmup.average_accuracy("w2") == pytest.approx(0.5)
        # w3 never saw qualification: still gets it first
        assignment = restored.on_worker_request("w3")
        assert assignment.task_id in restored.qualification_tasks

    def test_double_vote_still_deduplicated_after_restore(
        self, live_framework, paper_tasks, paper_graph, tiny_config,
        tmp_path,
    ):
        from repro.core.types import AnswerOutcome

        restored = rebuild(
            live_framework, paper_tasks, paper_graph, tiny_config,
            tmp_path,
        )
        votes_before = list(restored.votes()[7].answers)
        outcome = restored.on_answer("w1", 7, Label.YES)
        assert outcome is AnswerOutcome.DUPLICATE
        assert restored.votes()[7].answers == votes_before

    def test_run_continues_after_restore(
        self, live_framework, paper_tasks, paper_graph, tiny_config,
        tmp_path,
    ):
        restored = rebuild(
            live_framework, paper_tasks, paper_graph, tiny_config,
            tmp_path,
        )
        # completing task 7 with two more votes works
        restored.on_answer("w2", 7, Label.NO)
        restored.on_answer("w3", 7, Label.NO)
        assert 7 in restored.completed_tasks()


class TestValidation:
    def test_version_mismatch(self, live_framework, paper_tasks,
                              paper_graph, tiny_config):
        payload = checkpoint_state(live_framework)
        payload["version"] = 99
        fresh = ICrowd(
            paper_tasks, tiny_config, graph=paper_graph,
            qualification_tasks=[0, 1],
        )
        with pytest.raises(ValueError, match="version"):
            restore_state(fresh, payload)

    def test_qualification_mismatch(self, live_framework, paper_tasks,
                                    paper_graph, tiny_config):
        payload = checkpoint_state(live_framework)
        fresh = ICrowd(
            paper_tasks, tiny_config, graph=paper_graph,
            qualification_tasks=[2, 3],
        )
        with pytest.raises(ValueError, match="qualification"):
            restore_state(fresh, payload)
