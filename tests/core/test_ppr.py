"""Unit tests for the PPR solvers and the linearity basis (Section 3.1)."""

import numpy as np
import pytest

from repro.core.ppr import (
    PPRBasis,
    forward_push,
    power_iteration,
    solve_exact,
)


def dense_unit(n, i):
    q = np.zeros(n)
    q[i] = 1.0
    return q


class TestPowerIteration:
    def test_matches_closed_form(self, line_graph):
        """Eq. (4) must converge to Lemma 1's closed-form solution."""
        normalized = line_graph.normalized
        q = np.array([1.0, 0.0, 0.0, 0.5, 0.0])
        for damping in (0.3, 0.5, 0.8):
            iterated = power_iteration(normalized, q, damping, tol=1e-12)
            exact = solve_exact(normalized, q, damping)
            assert np.allclose(iterated, exact, atol=1e-8)

    def test_zero_restart_gives_zero(self, two_cliques):
        result = power_iteration(
            two_cliques.normalized, np.zeros(6), damping=0.5
        )
        assert np.allclose(result, 0.0)

    def test_mass_stays_in_source_component(self, two_cliques):
        result = power_iteration(
            two_cliques.normalized, dense_unit(6, 0), damping=0.5, tol=1e-12
        )
        assert result[:3].sum() > 0
        assert np.allclose(result[3:], 0.0)

    def test_rejects_bad_damping(self, line_graph):
        with pytest.raises(ValueError, match="damping"):
            power_iteration(line_graph.normalized, np.zeros(5), 1.0)

    def test_rejects_shape_mismatch(self, line_graph):
        with pytest.raises(ValueError, match="shape"):
            power_iteration(line_graph.normalized, np.zeros(3), 0.5)

    def test_restart_dominates_at_small_damping(self, line_graph):
        """damping → 0 means p ≈ q (alpha → ∞ in Eq. (2))."""
        q = np.array([0.9, 0.0, 0.4, 0.0, 0.0])
        result = power_iteration(line_graph.normalized, q, damping=1e-4)
        assert np.allclose(result, q, atol=1e-3)


class TestForwardPush:
    def test_agrees_with_power_iteration(self, paper_graph):
        normalized = paper_graph.normalized
        for source in range(paper_graph.num_tasks):
            pushed = forward_push(
                normalized, source, damping=0.5, epsilon=1e-10
            )
            dense = power_iteration(
                normalized,
                dense_unit(paper_graph.num_tasks, source),
                damping=0.5,
                tol=1e-12,
            )
            for j in range(paper_graph.num_tasks):
                assert pushed.get(j, 0.0) == pytest.approx(
                    dense[j], abs=1e-6
                )

    def test_locality(self, two_cliques):
        """Push from one clique never touches the other."""
        result = forward_push(
            two_cliques.normalized, 0, damping=0.5, epsilon=1e-10
        )
        assert set(result) <= {0, 1, 2}

    def test_rejects_bad_source(self, line_graph):
        with pytest.raises(ValueError, match="source"):
            forward_push(line_graph.normalized, 7, 0.5)

    def test_rejects_bad_epsilon(self, line_graph):
        with pytest.raises(ValueError, match="epsilon"):
            forward_push(line_graph.normalized, 0, 0.5, epsilon=0.0)

    def test_isolated_node(self):
        from repro.core.graph import SimilarityGraph

        graph = SimilarityGraph.from_edges(3, [(0, 1, 1.0)])
        result = forward_push(graph.normalized, 2, damping=0.5)
        # all mass stays on the isolated node: p = (1-c) * 1
        assert result == pytest.approx({2: 0.5})


class TestPPRBasis:
    @pytest.mark.parametrize("method", ["push", "power", "batch"])
    def test_methods_agree(self, paper_graph, method):
        reference = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=0.0, method="power",
            tol=1e-12,
        )
        other = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-9, method=method,
            tol=1e-12,
        )
        for i in range(paper_graph.num_tasks):
            assert np.allclose(reference.row(i), other.row(i), atol=1e-5)

    def test_linearity_property(self, paper_graph):
        """Lemma 3: combine(q) == power_iteration on q."""
        basis = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=0.0, method="batch",
            tol=1e-12,
        )
        q = {0: 1.0, 3: 0.5, 7: 0.25}
        combined = basis.combine(q)
        dense_q = np.zeros(paper_graph.num_tasks)
        for task_id, value in q.items():
            dense_q[task_id] = value
        direct = power_iteration(
            paper_graph.normalized, dense_q, damping=0.5, tol=1e-12
        )
        assert np.allclose(combined, direct, atol=1e-8)

    def test_combine_dense_and_sparse_agree(self, line_graph):
        basis = PPRBasis.compute(line_graph.normalized, damping=0.5)
        sparse_q = {1: 0.7, 4: 0.2}
        dense_q = np.zeros(5)
        dense_q[1], dense_q[4] = 0.7, 0.2
        assert np.allclose(
            basis.combine(sparse_q), basis.combine(dense_q), atol=1e-12
        )

    def test_truncation_reduces_nnz(self, paper_graph):
        fine = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-12
        )
        coarse = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-2
        )
        assert coarse.nnz <= fine.nnz

    def test_unknown_method(self, line_graph):
        with pytest.raises(ValueError, match="method"):
            PPRBasis.compute(line_graph.normalized, 0.5, method="magic")

    def test_combine_validates_shape(self, line_graph):
        basis = PPRBasis.compute(line_graph.normalized, damping=0.5)
        with pytest.raises(ValueError, match="shape"):
            basis.combine(np.zeros(3))

    def test_auto_uses_batch_for_small_graphs(self, line_graph):
        basis = PPRBasis.compute(
            line_graph.normalized, damping=0.5, method="auto"
        )
        assert basis.num_tasks == 5
