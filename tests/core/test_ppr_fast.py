"""Differential tests for the vectorised push kernel and parallel basis.

The fast offline phase rewrites forward push on flat numpy buffers
(:class:`PushKernel`), shards basis rows over a process pool
(``method="parallel-push"``) and keeps the original dict-and-deque
implementation as :func:`forward_push_reference`.  These tests pin the
fast paths to the reference and to the exact solver.
"""

import os

import numpy as np
import pytest

from repro.core.ppr import (
    ConvergenceWarning,
    PPRBasis,
    PushKernel,
    PushStats,
    forward_push,
    forward_push_reference,
    solve_exact,
)
from repro.experiments.figures import random_normalized_graph


def unit(n, i):
    q = np.zeros(n)
    q[i] = 1.0
    return q


class TestVectorisedVsReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_on_random_graphs(self, seed):
        normalized = random_normalized_graph(300, 6, seed)
        for source in (0, 57, 299):
            fast = forward_push(
                normalized, source, damping=0.5, epsilon=1e-9
            )
            slow = forward_push_reference(
                normalized, source, damping=0.5, epsilon=1e-9
            )
            exact = solve_exact(normalized, unit(300, source), 0.5)
            # both approximations sit within the push tolerance of the
            # exact solution (they need not be identical to each other:
            # the kernel relaxes whole frontiers, the reference one node
            # at a time)
            for approx in (fast, slow):
                dense = np.zeros(300)
                for node, value in approx.items():
                    dense[node] = value
                assert np.max(np.abs(dense - exact)) < 1e-6

    def test_matches_reference_on_paper_graph(self, paper_graph):
        normalized = paper_graph.normalized
        for source in range(paper_graph.num_tasks):
            fast = forward_push(
                normalized, source, damping=0.5, epsilon=1e-10
            )
            slow = forward_push_reference(
                normalized, source, damping=0.5, epsilon=1e-10
            )
            assert set(fast) == set(slow)
            for node, value in fast.items():
                assert value == pytest.approx(slow[node], abs=1e-8)

    def test_locality_preserved(self, two_cliques):
        kernel = PushKernel(two_cliques.normalized)
        nodes, values, _ = kernel.push(0, damping=0.5, epsilon=1e-10)
        assert set(nodes.tolist()) <= {0, 1, 2}
        assert np.all(values > 0)

    def test_kernel_buffer_reuse_is_clean(self):
        """Consecutive pushes on one kernel equal fresh-kernel pushes."""
        normalized = random_normalized_graph(200, 5, 3)
        shared = PushKernel(normalized)
        for source in (0, 7, 7, 199, 42):
            n1, v1, _ = shared.push(source, damping=0.5, epsilon=1e-8)
            n2, v2, _ = PushKernel(normalized).push(
                source, damping=0.5, epsilon=1e-8
            )
            assert np.array_equal(n1, n2)
            assert np.array_equal(v1, v2)

    def test_kernel_rejects_mismatched_matrix(self, line_graph, two_cliques):
        kernel = PushKernel(two_cliques.normalized)
        with pytest.raises(ValueError, match="different matrix"):
            forward_push(line_graph.normalized, 0, 0.5, kernel=kernel)

    def test_validation_matches_reference(self, line_graph):
        for push in (forward_push, forward_push_reference):
            with pytest.raises(ValueError, match="damping"):
                push(line_graph.normalized, 0, 1.5)
            with pytest.raises(ValueError, match="epsilon"):
                push(line_graph.normalized, 0, 0.5, epsilon=0.0)
            with pytest.raises(ValueError, match="source"):
                push(line_graph.normalized, 9, 0.5)


class TestPushStats:
    def test_stats_filled(self, paper_graph):
        stats = PushStats()
        forward_push(
            paper_graph.normalized, 0, damping=0.5, epsilon=1e-8,
            stats=stats,
        )
        assert stats.pushes > 0
        assert not stats.truncated
        assert stats.residual_norm < 1e-5

    @pytest.mark.parametrize(
        "push", [forward_push, forward_push_reference]
    )
    def test_truncation_warns(self, paper_graph, push):
        stats = PushStats()
        with pytest.warns(ConvergenceWarning, match="truncated"):
            push(
                paper_graph.normalized, 0, damping=0.9, epsilon=1e-12,
                max_pushes=2, stats=stats,
            )
        assert stats.truncated
        assert stats.residual_norm > 0

    def test_no_warning_when_converged(self, paper_graph):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            forward_push(paper_graph.normalized, 0, damping=0.5)


class TestParallelBasis:
    def test_parallel_identical_to_serial(self):
        # force_parallel: 200 tasks sit below the small-n fallback
        # threshold, and this test must keep exercising the real pool
        normalized = random_normalized_graph(200, 5, 11)
        serial = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6, method="push"
        )
        parallel = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6,
            method="parallel-push", num_workers=2, chunk_size=37,
            force_parallel=True,
        )
        assert np.array_equal(serial.matrix.indptr, parallel.matrix.indptr)
        assert np.array_equal(
            serial.matrix.indices, parallel.matrix.indices
        )
        assert np.array_equal(serial.matrix.data, parallel.matrix.data)

    def test_parallel_nnz_chunks_identical_to_serial(self):
        """Default (nnz-derived) work units match serial bit-for-bit."""
        normalized = random_normalized_graph(200, 5, 11)
        serial = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6, method="push"
        )
        parallel = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6,
            method="parallel-push", num_workers=2, force_parallel=True,
        )
        assert np.array_equal(serial.matrix.data, parallel.matrix.data)
        assert np.array_equal(
            serial.matrix.indices, parallel.matrix.indices
        )

    def test_small_input_falls_back_to_serial_with_counter(self):
        """Below the size thresholds, parallel requests run serially and
        the routing decision is observable on the metrics registry."""
        from repro.core.ppr import PARALLEL_MIN_TASKS
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        normalized = random_normalized_graph(100, 4, 7)
        assert normalized.shape[0] < PARALLEL_MIN_TASKS
        basis = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6,
            method="parallel-push", num_workers=4, recorder=registry,
        )
        serial = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6, method="push"
        )
        assert np.array_equal(basis.matrix.data, serial.matrix.data)
        snapshot = registry.snapshot()
        assert snapshot.get("repro_ppr_parallel_fallback_total") == 1.0

    def test_force_parallel_skips_fallback_counter(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        normalized = random_normalized_graph(64, 4, 7)
        PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6,
            method="parallel-push", num_workers=2, force_parallel=True,
            recorder=registry,
        )
        snapshot = registry.snapshot()
        assert "repro_ppr_parallel_fallback_total" not in snapshot

    def test_parallel_one_worker_falls_back_to_serial(self, paper_graph):
        basis = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-8,
            method="parallel-push", num_workers=1,
        )
        reference = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-8,
            method="push",
        )
        assert np.array_equal(basis.matrix.data, reference.matrix.data)

    def test_push_matches_exact_solver(self, paper_graph):
        basis = PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-9,
            method="push",
        )
        n = paper_graph.num_tasks
        for i in range(n):
            exact = solve_exact(paper_graph.normalized, unit(n, i), 0.5)
            assert np.allclose(basis.row(i), exact, atol=1e-6)

    def test_auto_selects_parallel_above_limit(self, monkeypatch):
        """auto → parallel-push for big graphs when workers resolve > 1."""
        monkeypatch.setattr(PPRBasis, "AUTO_BATCH_LIMIT", 64)
        normalized = random_normalized_graph(128, 4, 5)
        auto = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6, method="auto",
            num_workers=2,
        )
        serial = PPRBasis.compute(
            normalized, damping=0.5, epsilon=1e-6, method="push"
        )
        assert np.array_equal(auto.matrix.data, serial.matrix.data)

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2, reason="needs multiple cores"
    )
    def test_worker_default_resolves_to_cpu_count(self):
        from repro.core.ppr import _resolve_workers

        assert _resolve_workers(None) == os.cpu_count()
        assert _resolve_workers(0) == os.cpu_count()
        assert _resolve_workers(3) == 3
