"""Unit tests for qualification selection and warm-up (Sections 2.2 & 5)."""

import numpy as np
import pytest

from repro.core.estimator import AccuracyEstimator
from repro.core.config import EstimatorConfig
from repro.core.qualification import (
    WarmUp,
    influence,
    select_qualification_tasks,
    select_random_tasks,
)
from repro.core.types import Label


@pytest.fixture
def clique_basis(two_cliques):
    estimator = AccuracyEstimator(
        two_cliques, EstimatorConfig(basis_epsilon=1e-9)
    )
    return estimator.basis


class TestInfluence:
    def test_empty_selection(self, clique_basis):
        assert influence(clique_basis, []) == 0

    def test_single_task_covers_its_component(self, clique_basis):
        assert influence(clique_basis, [0]) == 3

    def test_cross_component_adds(self, clique_basis):
        assert influence(clique_basis, [0, 3]) == 6

    def test_same_component_saturates(self, clique_basis):
        assert influence(clique_basis, [0, 1]) == 3


class TestSelectQualification:
    def test_first_picks_cover_components(self, clique_basis):
        selected = select_qualification_tasks(clique_basis, budget=2)
        components = [{0, 1, 2}, {3, 4, 5}]
        hit = [bool(set(selected) & c) for c in components]
        assert all(hit)

    def test_budget_respected(self, clique_basis):
        assert len(select_qualification_tasks(clique_basis, budget=4)) == 4

    def test_no_duplicates(self, clique_basis):
        selected = select_qualification_tasks(clique_basis, budget=6)
        assert len(selected) == len(set(selected))

    def test_candidate_restriction(self, clique_basis):
        selected = select_qualification_tasks(
            clique_basis, budget=2, candidates=[3, 4, 5]
        )
        assert set(selected) <= {3, 4, 5}

    def test_rejects_bad_budget(self, clique_basis):
        with pytest.raises(ValueError):
            select_qualification_tasks(clique_basis, budget=0)

    def test_greedy_matches_exhaustive_on_small_graph(self, clique_basis):
        """For budget 2 on two 3-cliques, greedy must find a pair with
        full coverage — the true optimum."""
        selected = select_qualification_tasks(clique_basis, budget=2)
        assert influence(clique_basis, selected) == 6

    def test_spreads_across_paper_graph(self, paper_graph, paper_tasks):
        """On the (connected) Table 1 graph the mass tie-break must
        still spread picks over at least two product clusters."""
        estimator = AccuracyEstimator(paper_graph)
        selected = select_qualification_tasks(estimator.basis, budget=3)
        assert len(selected) == 3
        domains = {paper_tasks[t].domain for t in selected}
        assert len(domains) >= 2


class TestSelectRandom:
    def test_size_and_range(self):
        rng = np.random.default_rng(0)
        selected = select_random_tasks(50, 10, rng)
        assert len(selected) == 10
        assert all(0 <= t < 50 for t in selected)
        assert len(set(selected)) == 10

    def test_budget_clamped_to_population(self):
        rng = np.random.default_rng(0)
        assert len(select_random_tasks(3, 10, rng)) == 3

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            select_random_tasks(5, 0, np.random.default_rng(0))


class TestWarmUp:
    def make_warmup(self, threshold=0.5):
        truth = {0: Label.YES, 1: Label.NO, 2: Label.YES, 3: Label.NO}
        return WarmUp(truth, threshold=threshold)

    def test_serves_pending_tasks_in_order(self):
        warmup = self.make_warmup()
        assert warmup.next_task("w") == 0
        warmup.grade("w", 0, Label.YES)
        assert warmup.next_task("w") == 1

    def test_grading(self):
        warmup = self.make_warmup()
        assert warmup.grade("w", 0, Label.YES) is True
        assert warmup.grade("w", 1, Label.YES) is False
        assert warmup.average_accuracy("w") == pytest.approx(0.5)

    def test_rejection_below_threshold(self):
        warmup = self.make_warmup(threshold=0.6)
        for task, answer in [
            (0, Label.NO),
            (1, Label.YES),
            (2, Label.NO),
            (3, Label.YES),
        ]:
            warmup.grade("w", task, answer)  # all wrong
        assert not warmup.is_qualified("w")
        assert warmup.next_task("w") is None

    def test_paper_example_three_of_five(self):
        """Section 2.2: threshold 0.6 over 5 tasks rejects < 3 correct."""
        truth = {i: Label.YES for i in range(5)}
        warmup = WarmUp(truth, threshold=0.6)
        answers = [Label.YES, Label.YES, Label.NO, Label.NO, Label.NO]
        for task, answer in enumerate(answers):
            warmup.grade("w", task, answer)
        assert not warmup.is_qualified("w")  # only 2 of 5 correct

        warmup2 = WarmUp(truth, threshold=0.6)
        answers2 = [Label.YES, Label.YES, Label.YES, Label.NO, Label.NO]
        for task, answer in enumerate(answers2):
            warmup2.grade("w2", task, answer)
        assert warmup2.is_qualified("w2")  # exactly 3 of 5

    def test_no_rejection_before_finishing(self):
        warmup = self.make_warmup(threshold=1.0)
        warmup.grade("w", 0, Label.NO)  # wrong, but only 1 of 4 answered
        assert warmup.is_qualified("w")
        assert not warmup.has_finished("w")

    def test_double_grading_rejected(self):
        warmup = self.make_warmup()
        warmup.grade("w", 0, Label.YES)
        with pytest.raises(ValueError, match="already graded"):
            warmup.grade("w", 0, Label.YES)

    def test_grade_unknown_task(self):
        warmup = self.make_warmup()
        with pytest.raises(ValueError, match="not a qualification"):
            warmup.grade("w", 99, Label.YES)

    def test_qualified_workers_lists_finished_only(self):
        warmup = self.make_warmup(threshold=0.0)
        for task in range(4):
            warmup.grade("done", task, Label.YES)
        warmup.grade("partial", 0, Label.YES)
        assert warmup.qualified_workers() == ["done"]

    def test_requires_tasks_and_valid_threshold(self):
        with pytest.raises(ValueError):
            WarmUp({}, threshold=0.5)
        with pytest.raises(ValueError):
            WarmUp({0: Label.YES}, threshold=1.5)
