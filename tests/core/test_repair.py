"""Unit tests for incremental PPR basis repair (ROADMAP item 2).

The contract under test: after any sequence of task/edge insertions,
``PPRBasis.repair`` / ``ShardedBasis.repair`` seeded with the graph's
change journal produces a basis within the storage ``epsilon`` of a
cold rebuild — without re-pushing rows the change never reached.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.core.config import EstimatorConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.indexes import ShardIndex
from repro.core.ppr import PPRBasis, RepairStats, ShardedBasis
from repro.core.streaming import GrowableGraph
from repro.utils.rng import spawn_rng

DAMPING = 0.5
EPSILON = 1e-6


def random_growable(num_tasks, edges_per_task=3, seed=0, tag="repair-test"):
    rng = spawn_rng(seed, tag)
    graph = GrowableGraph()
    graph.add_tasks(num_tasks)
    for i in range(num_tasks):
        for _ in range(edges_per_task):
            j = int(rng.integers(0, num_tasks))
            if j != i:
                graph.add_edge(i, j, float(rng.uniform(0.2, 1.0)))
    return graph


def grow(graph, count, new_edges, seed=1, tag="repair-grow"):
    """Append ``count`` tasks and ``new_edges`` random edges."""
    rng = spawn_rng(seed, tag)
    new_ids = graph.add_tasks(count)
    n = graph.num_tasks
    for _ in range(new_edges):
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, n))
        if i != j:
            graph.add_edge(i, j, float(rng.uniform(0.2, 1.0)))
    return new_ids


def cold_basis(graph, epsilon=EPSILON):
    return PPRBasis.compute(
        graph.normalized_csr(), DAMPING, epsilon=epsilon, method="push"
    )


class TestPPRBasisRepair:
    def test_matches_cold_rebuild_after_growth(self):
        graph = random_growable(30)
        old = cold_basis(graph)
        graph.mark_clean()
        grow(graph, 8, 20)
        delta = graph.mark_clean()
        stats = RepairStats()
        repaired = old.repair(
            graph.normalized_csr(), delta.dirty_rows, DAMPING,
            epsilon=EPSILON, stats=stats,
        )
        cold = cold_basis(graph)
        diff = np.abs((repaired.matrix - cold.matrix).toarray()).max()
        assert diff <= EPSILON
        assert stats.new_rows == 8
        assert stats.repaired_rows + stats.reused_rows == 30

    def test_edge_only_change_same_size(self):
        graph = random_growable(20)
        old = cold_basis(graph)
        graph.mark_clean()
        graph.add_edge(0, 10, 0.9)
        delta = graph.mark_clean()
        repaired = old.repair(
            graph.normalized_csr(), delta.dirty_rows, DAMPING,
            epsilon=EPSILON,
        )
        cold = cold_basis(graph)
        diff = np.abs((repaired.matrix - cold.matrix).toarray()).max()
        assert diff <= EPSILON

    def test_noop_delta_reuses_every_row(self):
        graph = random_growable(15)
        old = cold_basis(graph)
        stats = RepairStats()
        repaired = old.repair(
            graph.normalized_csr(), (), DAMPING,
            epsilon=EPSILON, stats=stats,
        )
        assert stats.repaired_rows == 0
        assert stats.new_rows == 0
        assert stats.reused_rows == 15
        assert (repaired.matrix != old.matrix).nnz == 0

    def test_untouched_rows_carried_by_reference(self):
        """A change confined to one cluster must not re-push the other."""
        graph = GrowableGraph()
        graph.add_tasks(6)
        # two disconnected triangles: {0,1,2} and {3,4,5}
        for a, b in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            graph.add_edge(a, b, 1.0)
        old = cold_basis(graph)
        graph.mark_clean()
        graph.add_edge(3, 5, 0.5)  # perturb the second triangle only
        delta = graph.mark_clean()
        stats = RepairStats()
        repaired = old.repair(
            graph.normalized_csr(), delta.dirty_rows, DAMPING,
            epsilon=EPSILON, stats=stats,
        )
        assert stats.repaired_rows == 3
        assert stats.reused_rows == 3
        for row in (0, 1, 2):
            old_cols, old_vals = old._row_slice(row)
            new_cols, new_vals = repaired._row_slice(row)
            assert np.array_equal(old_cols, new_cols)
            assert np.array_equal(old_vals, new_vals)

    def test_validation(self):
        graph = random_growable(10)
        basis = cold_basis(graph)
        smaller = sparse.csr_matrix((5, 5), dtype=np.float64)
        with pytest.raises(ValueError):
            basis.repair(smaller, (), DAMPING)
        with pytest.raises(ValueError):
            basis.repair(graph.normalized_csr(), (99,), DAMPING)
        rect = sparse.csr_matrix((10, 12), dtype=np.float64)
        with pytest.raises(ValueError):
            basis.repair(rect, (), DAMPING)


class TestShardedBasisRepair:
    def make_clustered(self):
        """Two 10-task clusters with intra-cluster edges only."""
        rng = spawn_rng(5, "sharded-repair")
        graph = GrowableGraph()
        graph.add_tasks(20)
        for lo in (0, 10):
            for i in range(lo, lo + 10):
                for _ in range(3):
                    j = int(rng.integers(lo, lo + 10))
                    if j != i:
                        graph.add_edge(i, j, float(rng.uniform(0.2, 1.0)))
        return graph

    def test_matches_cold_and_reuses_clean_shard(self):
        graph = self.make_clustered()
        idx_old = ShardIndex([range(0, 10), range(10, 20)], 20)
        old = ShardedBasis.compute(
            graph.normalized_csr(), idx_old, DAMPING,
            epsilon=EPSILON, num_workers=1,
        )
        graph.mark_clean()
        # change confined to the second cluster, plus a new third one
        graph.add_edge(12, 17, 0.7)
        new = graph.add_tasks(5)
        for i in new:
            for j in new:
                if i < j:
                    graph.add_edge(i, j, 0.8)
        delta = graph.mark_clean()
        idx_new = ShardIndex(
            [range(0, 10), range(10, 20), range(20, 25)], 25
        )
        stats = RepairStats()
        repaired = old.repair(
            graph.normalized_csr(), delta.dirty_rows, idx_new, DAMPING,
            epsilon=EPSILON, stats=stats,
        )
        cold = ShardedBasis.compute(
            graph.normalized_csr(), idx_new, DAMPING,
            epsilon=EPSILON, num_workers=1,
        )
        diff = np.abs(
            (repaired.to_global() - cold.to_global()).toarray()
        ).max()
        assert diff <= EPSILON
        # shard 0 never touched: block reused without copying
        assert np.shares_memory(
            repaired.block(0).data, old.block(0).data
        )
        assert stats.reused_rows == 10

    def test_repartition_across_repair(self):
        """Rows are partition-independent: the new index may split
        tasks differently and repair still matches cold."""
        graph = self.make_clustered()
        idx_old = ShardIndex([range(0, 10), range(10, 20)], 20)
        old = ShardedBasis.compute(
            graph.normalized_csr(), idx_old, DAMPING,
            epsilon=EPSILON, num_workers=1,
        )
        graph.mark_clean()
        graph.add_edge(0, 15, 0.6)  # bridge the clusters
        delta = graph.mark_clean()
        idx_new = ShardIndex([range(0, 7), range(7, 20)], 20)
        repaired = old.repair(
            graph.normalized_csr(), delta.dirty_rows, idx_new, DAMPING,
            epsilon=EPSILON,
        )
        cold = ShardedBasis.compute(
            graph.normalized_csr(), idx_new, DAMPING,
            epsilon=EPSILON, num_workers=1,
        )
        diff = np.abs(
            (repaired.to_global() - cold.to_global()).toarray()
        ).max()
        assert diff <= EPSILON

    def test_index_size_mismatch_rejected(self):
        graph = self.make_clustered()
        idx = ShardIndex([range(0, 10), range(10, 20)], 20)
        basis = ShardedBasis.compute(
            graph.normalized_csr(), idx, DAMPING,
            epsilon=EPSILON, num_workers=1,
        )
        graph.add_tasks(5)
        with pytest.raises(ValueError):
            basis.repair(
                graph.normalized_csr(), (), idx, DAMPING,
                epsilon=EPSILON,
            )


class TestEstimatorUpdateGraph:
    def test_incremental_repair_matches_cold(self, tmp_path):
        graph = random_growable(25)
        config = EstimatorConfig(incremental=True)
        estimator = AccuracyEstimator(
            SimilarityGraph(graph.similarity_csr()), config,
            basis_method="push", cache_dir=tmp_path,
        )
        estimator.precompute()
        graph.mark_clean()
        grow(graph, 5, 12)
        delta = graph.mark_clean()
        frozen = SimilarityGraph(graph.similarity_csr())
        estimator.update_graph(frozen, delta.dirty_rows)
        cold = AccuracyEstimator(
            frozen, EstimatorConfig(), basis_method="push"
        )
        diff = np.abs(
            (estimator.basis.matrix - cold.basis.matrix).toarray()
        ).max()
        assert diff <= config.basis_epsilon
        # the repaired basis was re-keyed into the cache: a fresh
        # estimator on the new graph loads it instead of recomputing
        warm = AccuracyEstimator(
            frozen, config, basis_method="push", cache_dir=tmp_path
        )
        warm.precompute()
        assert warm.basis_from_cache
        assert (
            warm.basis.matrix != estimator.basis.matrix
        ).nnz == 0

    def test_non_incremental_drops_basis(self):
        graph = random_growable(15)
        estimator = AccuracyEstimator(
            SimilarityGraph(graph.similarity_csr()),
            EstimatorConfig(incremental=False),
            basis_method="push",
        )
        estimator.precompute()
        grow(graph, 2, 4)
        estimator.update_graph(SimilarityGraph(graph.similarity_csr()))
        assert estimator._basis is None
        # next access recomputes on the new graph
        assert estimator.basis.num_tasks == 17

    def test_incremental_without_materialised_basis_recomputes(self):
        graph = random_growable(10)
        estimator = AccuracyEstimator(
            SimilarityGraph(graph.similarity_csr()),
            EstimatorConfig(incremental=True),
            basis_method="push",
        )
        grow(graph, 2, 4)
        estimator.update_graph(SimilarityGraph(graph.similarity_csr()))
        assert estimator.basis.num_tasks == 12

    def test_sharded_incremental_repair(self):
        graph = random_growable(24, seed=9)
        config = EstimatorConfig(incremental=True, shard_size=8)
        estimator = AccuracyEstimator(
            SimilarityGraph(graph.similarity_csr()), config,
            basis_method="push",
        )
        estimator.precompute()
        assert isinstance(estimator.basis, ShardedBasis)
        graph.mark_clean()
        grow(graph, 6, 10, seed=10)
        delta = graph.mark_clean()
        frozen = SimilarityGraph(graph.similarity_csr())
        estimator.update_graph(frozen, delta.dirty_rows)
        assert isinstance(estimator.basis, ShardedBasis)
        assert estimator.basis.num_tasks == 30
        cold = AccuracyEstimator(
            frozen, EstimatorConfig(shard_size=8), basis_method="push"
        )
        diff = np.abs(
            (estimator.basis.matrix - cold.basis.matrix).toarray()
        ).max()
        assert diff <= config.basis_epsilon

    def test_shrinking_graph_rejected(self):
        graph = random_growable(10)
        estimator = AccuracyEstimator(
            SimilarityGraph(graph.similarity_csr()),
            EstimatorConfig(incremental=True),
            basis_method="push",
        )
        estimator.precompute()
        smaller = random_growable(5, seed=2)
        with pytest.raises(ValueError):
            estimator.update_graph(
                SimilarityGraph(smaller.similarity_csr())
            )

    def test_repaired_estimates_match_cold(self):
        """Differential: online estimates through a repaired basis
        agree with a cold estimator on the frozen graph."""
        graph = random_growable(20, seed=4)
        estimator = AccuracyEstimator(
            SimilarityGraph(graph.similarity_csr()),
            EstimatorConfig(incremental=True),
            basis_method="push",
        )
        estimator.precompute()
        graph.mark_clean()
        grow(graph, 4, 8, seed=6)
        delta = graph.mark_clean()
        frozen = SimilarityGraph(graph.similarity_csr())
        estimator.update_graph(frozen, delta.dirty_rows)
        cold = AccuracyEstimator(
            frozen, EstimatorConfig(), basis_method="push"
        )
        observed = {0: 0.9, 5: 0.4, 21: 0.8}
        np.testing.assert_allclose(
            estimator.estimate(observed), cold.estimate(observed),
            atol=1e-4,
        )
