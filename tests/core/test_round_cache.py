"""Tests for the amortised per-round assignment scheme cache.

The greedy scheme of Algorithm 3 is worker-disjoint, so one scheme can
serve a whole round of per-worker requests.  :class:`AdaptiveAssigner`
caches it keyed on ``(epoch, active set)``; the framework bumps the
epoch whenever an answer arrives or an assignment is released.  These
tests assert both the amortisation (call counts) and that caching never
changes what a worker is handed.
"""

import numpy as np
import pytest

from repro.core.assigner import AdaptiveAssigner, TaskState
from repro.core.framework import ICrowd


def make_states(num_tasks=4, k=1):
    return [TaskState(task_id=i, k=k) for i in range(num_tasks)]


def make_accuracies(workers, num_tasks=4, seed=0):
    rng = np.random.default_rng(seed)
    return {w: rng.uniform(0.3, 0.95, size=num_tasks) for w in workers}


WORKERS = ["w1", "w2", "w3"]


def diagonal_accuracies(num_tasks=4):
    """Each worker is clearly best at 'her' task (w_i → task i-1)."""
    out = {}
    for i, worker in enumerate(WORKERS):
        vec = np.full(num_tasks, 0.4)
        vec[i] = 0.9
        out[worker] = vec
    return out


class TestAssignerRoundCache:
    def test_one_computation_per_round(self):
        assigner = AdaptiveAssigner()
        states = make_states()
        accuracies = make_accuracies(WORKERS)
        for worker in WORKERS:
            assigner.assign_for_worker(
                worker, states, WORKERS, accuracies, epoch=1
            )
        assert assigner.scheme_computations == 1

    def test_caching_does_not_change_assignments(self):
        states = make_states()
        accuracies = make_accuracies(WORKERS)
        cached_assigner = AdaptiveAssigner()
        uncached_assigner = AdaptiveAssigner()
        cached = [
            cached_assigner.assign_for_worker(
                w, states, WORKERS, accuracies, epoch=1
            )
            for w in WORKERS
        ]
        uncached = [
            uncached_assigner.assign_for_worker(
                w, make_states(), WORKERS, accuracies, epoch=None
            )
            for w in WORKERS
        ]
        assert cached == uncached
        assert cached_assigner.scheme_computations == 1
        assert uncached_assigner.scheme_computations == len(WORKERS)

    def test_epoch_change_recomputes(self):
        assigner = AdaptiveAssigner()
        states = make_states()
        accuracies = make_accuracies(WORKERS)
        assigner.assign_for_worker("w1", states, WORKERS, accuracies, epoch=1)
        assigner.assign_for_worker("w2", states, WORKERS, accuracies, epoch=2)
        assert assigner.scheme_computations == 2

    def test_active_set_change_recomputes(self):
        assigner = AdaptiveAssigner()
        states = make_states()
        accuracies = make_accuracies(WORKERS + ["w4"])
        assigner.assign_for_worker("w1", states, WORKERS, accuracies, epoch=1)
        assigner.assign_for_worker(
            "w1", states, WORKERS + ["w4"], accuracies, epoch=1
        )
        assert assigner.scheme_computations == 2

    def test_no_epoch_no_caching(self):
        assigner = AdaptiveAssigner()
        states = make_states()
        accuracies = make_accuracies(WORKERS)
        for _ in range(3):
            assigner.assign_for_worker("w1", states, WORKERS, accuracies)
        assert assigner.scheme_computations == 3

    def test_served_rerequest_recomputes(self):
        """A worker re-requesting her issued slot gets a fresh scheme."""
        assigner = AdaptiveAssigner()
        states = make_states()
        accuracies = diagonal_accuracies()
        first = assigner.assign_for_worker(
            "w1", states, WORKERS, accuracies, epoch=1
        )
        assert first is not None
        # the framework would have recorded the issued slot
        states[first.task_id].assigned_workers.add("w1")
        second = assigner.assign_for_worker(
            "w1", states, WORKERS, accuracies, epoch=1
        )
        assert assigner.scheme_computations == 2
        assert second is None or second.task_id != first.task_id

    def test_invalidate_drops_cache(self):
        assigner = AdaptiveAssigner()
        states = make_states()
        accuracies = make_accuracies(WORKERS)
        assigner.assign_for_worker("w1", states, WORKERS, accuracies, epoch=1)
        assigner.invalidate()
        assigner.assign_for_worker("w2", states, WORKERS, accuracies, epoch=1)
        assert assigner.scheme_computations == 2

    def test_batch_assign_counts_once(self):
        assigner = AdaptiveAssigner()
        states = make_states()
        accuracies = make_accuracies(WORKERS)
        assigner.assign(states, WORKERS, accuracies)
        assert assigner.scheme_computations == 1


def finish_warmup(framework, tasks, worker, correct=True):
    while True:
        assignment = framework.on_worker_request(worker)
        if assignment is None or not assignment.is_test:
            return assignment
        if assignment.task_id not in framework.qualification_tasks:
            return assignment
        truth = tasks[assignment.task_id].truth
        framework.on_answer(
            worker,
            assignment.task_id,
            truth if correct else truth.flipped(),
        )


class TestFrameworkRoundCache:
    @pytest.fixture
    def framework(self, paper_tasks, paper_graph, tiny_config):
        return ICrowd(
            paper_tasks,
            tiny_config,
            graph=paper_graph,
            qualification_tasks=[0, 1],
        )

    @pytest.fixture
    def settled(self, framework, paper_tasks):
        """Framework with three qualified workers holding no tasks."""
        for worker in WORKERS:
            assignment = finish_warmup(framework, paper_tasks, worker)
            framework.on_answer(
                worker,
                assignment.task_id,
                paper_tasks[assignment.task_id].truth,
            )
        return framework

    def test_round_costs_one_scheme(self, settled):
        base = settled.assigner.scheme_computations
        issued = [settled.on_worker_request(w) for w in WORKERS]
        assert all(a is not None for a in issued)
        assert settled.assigner.scheme_computations == base + 1

    def test_answer_starts_new_round(self, settled, paper_tasks):
        epoch = settled.assignment_epoch
        issued = {w: settled.on_worker_request(w) for w in WORKERS}
        assert settled.assignment_epoch == epoch  # requests don't bump
        base = settled.assigner.scheme_computations
        settled.on_answer(
            "w1",
            issued["w1"].task_id,
            paper_tasks[issued["w1"].task_id].truth,
        )
        assert settled.assignment_epoch == epoch + 1
        settled.on_worker_request("w2")
        assert settled.assigner.scheme_computations == base + 1

    def test_release_starts_new_round(self, settled):
        issued = settled.on_worker_request("w1")
        epoch = settled.assignment_epoch
        assert settled.release_assignment("w1", issued.task_id)
        assert settled.assignment_epoch == epoch + 1

    def test_cached_round_is_consistent(self, settled):
        """No two workers of one round are issued the same vote slot
        beyond the task's k, and nobody gets a task twice."""
        issued = {w: settled.on_worker_request(w) for w in WORKERS}
        per_task = {}
        for worker, assignment in issued.items():
            if assignment is None or assignment.is_test:
                continue
            per_task.setdefault(assignment.task_id, []).append(worker)
        k = settled.config.assigner.k
        for task_id, holders in per_task.items():
            assert len(holders) <= k
