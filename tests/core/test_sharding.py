"""Shard correctness: partition determinism, index maps, and the
bit-identity of the sharded offline basis against the serial path.

The sharded basis never pushes on a shard submatrix — shards only pick
which sources a process solves and how results are blocked — so its
values must equal the serial ``"push"`` output *bit for bit*, not just
within tolerance.  The identity assertions here reuse the exact-array
check pattern of ``tests/core/test_basis_cache.py``.
"""

import numpy as np
import pytest

from repro.core.config import EstimatorConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.indexes import ShardIndex
from repro.core.ppr import PPRBasis, ShardedBasis
from repro.obs.metrics import MetricsRegistry


def multi_component_graph() -> SimilarityGraph:
    """Deterministic fixture: one 12-node ring (to be split), a
    4-clique, a 3-path and two isolated-pair components."""
    edges = []
    ring = list(range(12))
    edges += [
        (ring[i], ring[(i + 1) % 12], 0.9) for i in range(12)
    ]
    clique = [12, 13, 14, 15]
    edges += [
        (a, b, 0.8)
        for i, a in enumerate(clique)
        for b in clique[i + 1 :]
    ]
    edges += [(16, 17, 0.7), (17, 18, 0.7)]  # 3-path
    edges += [(19, 20, 0.6), (21, 22, 0.6)]  # two pairs
    return SimilarityGraph.from_edges(23, edges)


class TestShardIndex:
    def test_maps_are_consistent(self):
        index = ShardIndex([[3, 1], [0, 2, 4]], num_tasks=5)
        assert index.num_shards == 2
        assert index.shard_sizes() == [2, 3]
        for task in range(5):
            shard, local = index.locate(task)
            assert index.shard_tasks(shard)[local] == task
        # members are sorted regardless of input order
        assert index.shard_tasks(0).tolist() == [1, 3]
        assert index.shard_tasks(1).tolist() == [0, 2, 4]

    def test_group_orders_shards_ascending(self):
        index = ShardIndex([[3, 1], [0, 2, 4]], num_tasks=5)
        grouped = index.group([4, 3, 0, 1])
        assert list(grouped) == [0, 1]
        assert grouped[0] == [3, 1]
        assert grouped[1] == [4, 0]

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError, match="empty"):
            ShardIndex([[0, 1], []], num_tasks=2)
        with pytest.raises(ValueError, match="out-of-range"):
            ShardIndex([[0, 5]], num_tasks=2)
        with pytest.raises(ValueError, match="repeats"):
            ShardIndex([[0, 0, 1]], num_tasks=2)
        with pytest.raises(ValueError, match="more than one shard"):
            ShardIndex([[0, 1], [1]], num_tasks=2)
        with pytest.raises(ValueError, match="no shard"):
            ShardIndex([[0]], num_tasks=2)


class TestPartition:
    def test_components_become_shards(self):
        graph = multi_component_graph()
        sharded = graph.partition()
        components = graph.connected_components()
        assert sharded.num_shards == len(components)
        assert sharded.cut_edges == 0
        assert sharded.split_components == 0
        shard_sets = {
            frozenset(sharded.index.shard_tasks(s).tolist())
            for s in range(sharded.num_shards)
        }
        assert shard_sets == {frozenset(c) for c in components}

    def test_oversized_component_is_split(self):
        graph = multi_component_graph()
        sharded = graph.partition(max_shard_tasks=6)
        assert sharded.split_components == 1  # only the 12-ring
        assert max(sharded.index.shard_sizes()) <= 6
        assert sharded.cut_edges > 0
        # split chunks follow the BFS order, so the ring splits into
        # two contiguous arcs — exactly 2 cut edges
        assert sharded.cut_edges == 2

    def test_small_components_are_packed(self):
        graph = multi_component_graph()
        sharded = graph.partition(max_shard_tasks=8)
        # packing small components never cuts an edge
        assert sharded.cut_edges == 2  # from splitting the ring only
        sizes = sharded.index.shard_sizes()
        assert sum(sizes) == graph.num_tasks
        assert max(sizes) <= 8
        # the 4-clique, 3-path and one pair fit in one packed shard
        assert sharded.num_shards < len(graph.connected_components()) + 1

    def test_partition_is_deterministic(self):
        """RL003: equal graphs produce equal partitions, every time."""
        snapshots = []
        for _ in range(3):
            sharded = multi_component_graph().partition(max_shard_tasks=6)
            snapshots.append(
                [
                    sharded.index.shard_tasks(s).tolist()
                    for s in range(sharded.num_shards)
                ]
            )
        assert snapshots[0] == snapshots[1] == snapshots[2]

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="max_shard_tasks"):
            multi_component_graph().partition(max_shard_tasks=0)


class TestShardedBasisIdentity:
    def test_serial_sharded_bit_identical(self):
        graph = multi_component_graph()
        index = graph.partition(max_shard_tasks=6).index
        serial = PPRBasis.compute(
            graph.normalized, damping=0.5, epsilon=1e-8, method="push"
        )
        sharded = ShardedBasis.compute(
            graph.normalized, index, damping=0.5, epsilon=1e-8
        )
        merged = sharded.to_global()
        assert np.array_equal(serial.matrix.indptr, merged.indptr)
        assert np.array_equal(serial.matrix.indices, merged.indices)
        assert np.array_equal(serial.matrix.data, merged.data)

    def test_pool_sharded_bit_identical(self):
        graph = multi_component_graph()
        index = graph.partition(max_shard_tasks=6).index
        serial = PPRBasis.compute(
            graph.normalized, damping=0.5, epsilon=1e-8, method="push"
        )
        pooled = ShardedBasis.compute(
            graph.normalized, index, damping=0.5, epsilon=1e-8,
            num_workers=2, force_parallel=True,
        )
        merged = pooled.to_global()
        assert np.array_equal(serial.matrix.indptr, merged.indptr)
        assert np.array_equal(serial.matrix.indices, merged.indices)
        assert np.array_equal(serial.matrix.data, merged.data)

    def test_row_and_combine_match_unsharded(self):
        graph = multi_component_graph()
        index = graph.partition(max_shard_tasks=6).index
        serial = PPRBasis.compute(
            graph.normalized, damping=0.5, epsilon=1e-8, method="push"
        )
        sharded = ShardedBasis.compute(
            graph.normalized, index, damping=0.5, epsilon=1e-8
        )
        for task in (0, 7, 15, 22):
            assert np.array_equal(serial.row(task), sharded.row(task))
        observed = {2: 0.9, 14: 0.4, 19: 0.7}
        assert np.array_equal(
            serial.combine(observed), sharded.combine(observed)
        )
        dense = np.zeros(graph.num_tasks)
        dense[[2, 14, 19]] = (0.9, 0.4, 0.7)
        assert np.allclose(
            serial.combine(dense), sharded.combine(dense)
        )

    def test_from_global_roundtrip(self):
        graph = multi_component_graph()
        index = graph.partition(max_shard_tasks=6).index
        serial = PPRBasis.compute(
            graph.normalized, damping=0.5, epsilon=1e-8, method="push"
        )
        reblocked = ShardedBasis.from_global(serial, index)
        assert np.array_equal(
            reblocked.to_global().data, serial.matrix.data
        )
        assert reblocked.nnz == serial.nnz

    def test_small_input_fallback_is_observable(self):
        graph = multi_component_graph()
        index = graph.partition().index
        registry = MetricsRegistry()
        ShardedBasis.compute(
            graph.normalized, index, damping=0.5, epsilon=1e-8,
            num_workers=4, recorder=registry,
        )
        snapshot = registry.snapshot()
        assert snapshot.get("repro_ppr_parallel_fallback_total") == 1.0


class TestShardedRoundCache:
    def test_rerequest_refreshes_only_owner_shard(self):
        """A mid-round re-request recomputes the held task's shard and
        re-merges; the other shards' local schemes are reused."""
        from repro.core.assigner import AdaptiveAssigner, TaskState

        registry = MetricsRegistry()
        index = ShardIndex([[0, 1], [2, 3]], num_tasks=4)
        accuracies = {
            "a0": np.array([0.9, 0.8, 0.0, 0.0]),
            "a1": np.array([0.7, 0.6, 0.0, 0.0]),
            "b0": np.array([0.0, 0.0, 0.9, 0.8]),
            "b1": np.array([0.0, 0.0, 0.7, 0.6]),
        }
        workers = sorted(accuracies)
        shard_pools = {0: {"a0", "a1"}, 1: {"b0", "b1"}}
        states = [
            TaskState(
                task_id=t,
                k=1,
                tested_workers=set().union(
                    *(
                        pool
                        for shard, pool in shard_pools.items()
                        if shard != index.shard_of(t)
                    )
                ),
            )
            for t in range(4)
        ]
        assigner = AdaptiveAssigner(shard_index=index, recorder=registry)
        first = assigner.assign_for_worker(
            "a0", states, workers, accuracies, epoch=5
        )
        assert first is not None and first.task_id == 0
        # the platform issues the slot: worker now holds task 0
        states[0].assigned_workers.add("a0")
        second = assigner.assign_for_worker(
            "a0", states, workers, accuracies, epoch=5
        )
        assert second is not None and second.task_id == 1
        snapshot = registry.snapshot()
        # one full build, then one refresh touching a single shard
        assert snapshot["repro_assigner_scheme_builds_total"] == 1.0
        assert snapshot["repro_assigner_shard_refreshes_total"] == 1.0
        # 2 shards on the full build + 1 recomputed on refresh
        assert snapshot["repro_assigner_shard_scheme_builds_total"] == 3.0


class TestEstimatorSharding:
    def test_shard_size_routes_through_sharded_basis(self):
        graph = multi_component_graph()
        plain = AccuracyEstimator(graph, EstimatorConfig())
        sharded = AccuracyEstimator(
            graph, EstimatorConfig(shard_size=6), basis_method="push"
        )
        assert plain.shard_index is None
        assert sharded.shard_index is not None
        assert isinstance(sharded.basis, ShardedBasis)
        observed = {0: 0.8, 13: 0.6}
        assert np.allclose(
            plain.estimate(observed), sharded.estimate(observed)
        )
        assert plain.influence_support(14) == sharded.influence_support(
            14
        )

    def test_cache_interop_between_sharded_and_unsharded(self, tmp_path):
        """A sharded run consumes an unsharded run's cache entry and
        vice versa — the on-disk format is the whole-graph matrix."""
        graph = multi_component_graph()
        plain_config = EstimatorConfig(basis_cache_dir=str(tmp_path))
        shard_config = EstimatorConfig(
            basis_cache_dir=str(tmp_path), shard_size=6
        )
        cold = AccuracyEstimator(graph, plain_config, basis_method="push")
        cold.precompute()
        assert not cold.basis_from_cache
        warm = AccuracyEstimator(graph, shard_config)
        warm.precompute()
        assert warm.basis_from_cache
        assert isinstance(warm.basis, ShardedBasis)
        assert np.array_equal(
            warm.basis.matrix.data, cold.basis.matrix.data
        )
