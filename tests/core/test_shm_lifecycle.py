"""Shared-memory lifecycle regressions for the sharded offline phase.

Two failure modes this file pins down:

- a worker-side attach failure (``SharedMemory(name=...)`` raising)
  must restore ``resource_tracker.register`` and close every segment
  attached before the failure — the monkeypatch must never outlive
  ``_attach``;
- publisher teardown must be per-segment error-isolated: one failing
  ``unlink()`` cannot skip the remaining segments, and each failure
  increments ``repro_ppr_shm_unlink_errors_total``.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory

import numpy as np
import pytest
from scipy import sparse

from repro.core.ppr import _attach, _SharedArraySpec, _SharedCSRPublisher
from repro.obs import MetricsRegistry


@pytest.fixture
def published_segment():
    segment = shared_memory.SharedMemory(create=True, size=16)
    np.ndarray((2,), dtype=np.float64, buffer=segment.buf)[:] = [1.0, 2.0]
    yield segment
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        pass


def _matrix() -> sparse.csr_matrix:
    dense = np.array([[0.0, 1.0], [1.0, 0.0]])
    return sparse.csr_matrix(dense)


class TestAttach:
    def test_success_restores_tracker_and_attaches_views(
        self, published_segment: shared_memory.SharedMemory
    ) -> None:
        original = resource_tracker.register
        spec = _SharedArraySpec(published_segment.name, "<f8", (2,))
        arrays, segments = _attach([spec])
        try:
            assert resource_tracker.register is original
            assert arrays[0].tolist() == [1.0, 2.0]
        finally:
            for segment in segments:
                segment.close()

    def test_failure_restores_tracker(
        self, published_segment: shared_memory.SharedMemory
    ) -> None:
        original = resource_tracker.register
        good = _SharedArraySpec(published_segment.name, "<f8", (2,))
        bad = _SharedArraySpec("psm_repro_missing_xyz", "<f8", (2,))
        with pytest.raises(FileNotFoundError):
            _attach([good, bad])
        assert resource_tracker.register is original

    def test_failure_closes_previously_attached_segments(
        self,
        published_segment: shared_memory.SharedMemory,
        monkeypatch: pytest.MonkeyPatch,
    ) -> None:
        real_cls = shared_memory.SharedMemory
        closed: list[str] = []

        def recording(*args: object, **kwargs: object):
            segment = real_cls(*args, **kwargs)
            original_close = segment.close

            def close_and_record() -> None:
                closed.append(segment.name)
                original_close()

            segment.close = close_and_record  # type: ignore[method-assign]
            return segment

        monkeypatch.setattr(shared_memory, "SharedMemory", recording)
        good = _SharedArraySpec(published_segment.name, "<f8", (2,))
        bad = _SharedArraySpec("psm_repro_missing_xyz", "<f8", (2,))
        with pytest.raises(FileNotFoundError):
            _attach([good, bad])
        assert closed == [published_segment.name]


class TestPublisherClose:
    def test_segments_published_and_closed(self) -> None:
        publisher = _SharedCSRPublisher(_matrix())
        name = publisher.spec.data.name
        attached = shared_memory.SharedMemory(name=name)
        attached.close()
        publisher.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_one_failing_unlink_does_not_skip_remaining_segments(
        self,
    ) -> None:
        recorder = MetricsRegistry()
        publisher = _SharedCSRPublisher(_matrix(), recorder=recorder)
        spec = publisher.spec
        # sabotage the first segment: unlink it out from under the
        # publisher so its own unlink() raises FileNotFoundError
        first = shared_memory.SharedMemory(name=spec.data.name)
        first.unlink()
        first.close()
        publisher.close()
        # remaining segments were still unlinked, not skipped
        for name in (spec.indices.name, spec.indptr.name):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        counter = recorder.counter(
            "repro_ppr_shm_unlink_errors_total", ""
        )
        assert counter.value == 1

    def test_close_is_idempotent(self) -> None:
        recorder = MetricsRegistry()
        publisher = _SharedCSRPublisher(_matrix(), recorder=recorder)
        publisher.close()
        publisher.close()  # second call: no segments, no errors
        counter = recorder.counter(
            "repro_ppr_shm_unlink_errors_total", ""
        )
        assert counter.value == 0

    def test_partial_publish_failure_tears_down_own_segments(
        self, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        real_cls = shared_memory.SharedMemory
        created: list[shared_memory.SharedMemory] = []
        calls = {"count": 0}

        def failing_second(*args: object, **kwargs: object):
            calls["count"] += 1
            if calls["count"] == 2:
                raise OSError("simulated allocation failure")
            segment = real_cls(*args, **kwargs)
            created.append(segment)
            return segment

        monkeypatch.setattr(shared_memory, "SharedMemory", failing_second)
        with pytest.raises(OSError, match="simulated"):
            _SharedCSRPublisher(_matrix())
        # the first segment was created, then released by the
        # constructor's own teardown
        assert len(created) == 1
        with pytest.raises(FileNotFoundError):
            real_cls(name=created[0].name)
