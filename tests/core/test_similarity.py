"""Unit tests for the similarity measures (Section 3.3)."""

import numpy as np
import pytest

from repro.core.similarity import (
    classifier_similarity,
    compute_similarity,
    euclidean_similarity,
    jaccard_similarity,
    tfidf_cosine_similarity,
    topic_cosine_similarity,
)
from repro.core.types import Label, Task


def make_task(i, text, domain="d", features=None):
    return Task(
        task_id=i, text=text, domain=domain, truth=Label.NO,
        features=features,
    )


class TestJaccard:
    def test_paper_example_t2_t7(self):
        """Table 1 / Figure 3: sim(t2, t7) = 4/7."""
        t2 = make_task(0, "ipod touch 32gb wifi headphone")
        t7 = make_task(1, "ipod touch 32gb wifi case black")
        sim = jaccard_similarity([t2, t7])
        assert sim[0, 1] == pytest.approx(4 / 7)

    def test_symmetric_zero_diagonal(self):
        tasks = [make_task(i, t) for i, t in enumerate(["a b", "b c", "c d"])]
        sim = jaccard_similarity(tasks)
        assert np.allclose(sim, sim.T)
        assert np.all(np.diag(sim) == 0)

    def test_disjoint_tokens_zero(self):
        tasks = [make_task(0, "a b"), make_task(1, "c d")]
        assert jaccard_similarity(tasks)[0, 1] == 0.0

    def test_identical_text_is_one(self):
        tasks = [make_task(0, "x y z"), make_task(1, "x y z")]
        assert jaccard_similarity(tasks)[0, 1] == pytest.approx(1.0)


class TestTfIdfCosine:
    def test_range_and_symmetry(self):
        tasks = [
            make_task(0, "iphone wifi iphone"),
            make_task(1, "iphone case"),
            make_task(2, "ipad retina display"),
        ]
        sim = tfidf_cosine_similarity(tasks)
        assert np.allclose(sim, sim.T)
        assert sim.min() >= 0.0 and sim.max() <= 1.0
        assert np.all(np.diag(sim) == 0)

    def test_shared_vocabulary_scores_higher(self):
        tasks = [
            make_task(0, "iphone wifi 32gb"),
            make_task(1, "iphone wifi 16gb"),
            make_task(2, "country area brazil"),
        ]
        sim = tfidf_cosine_similarity(tasks)
        assert sim[0, 1] > sim[0, 2]


class TestTopicCosine:
    def test_in_domain_pairs_more_similar(self):
        phone = [f"iphone wifi model {i} screen battery" for i in range(6)]
        food = [f"chocolate calories sugar snack {i} sweet" for i in range(6)]
        tasks = [
            make_task(i, text)
            for i, text in enumerate(phone + food)
        ]
        sim = topic_cosine_similarity(tasks, num_topics=4, seed=1,
                                      num_iterations=80)
        in_domain = np.mean([sim[i, j] for i in range(6) for j in range(6)
                             if i != j])
        cross = np.mean([sim[i, j] for i in range(6) for j in range(6, 12)])
        assert in_domain > cross

    def test_deterministic_given_seed(self):
        tasks = [make_task(i, f"word{i} shared common") for i in range(5)]
        a = topic_cosine_similarity(tasks, num_topics=3, seed=9,
                                    num_iterations=30)
        b = topic_cosine_similarity(tasks, num_topics=3, seed=9,
                                    num_iterations=30)
        assert np.array_equal(a, b)


class TestEuclidean:
    def test_requires_features(self):
        tasks = [make_task(0, "a"), make_task(1, "b")]
        with pytest.raises(ValueError, match="features"):
            euclidean_similarity(tasks)

    def test_max_distance_pair_gets_zero(self):
        tasks = [
            make_task(0, "a", features=(0.0, 0.0)),
            make_task(1, "b", features=(3.0, 4.0)),
            make_task(2, "c", features=(0.0, 1.0)),
        ]
        sim = euclidean_similarity(tasks)
        assert sim[0, 1] == pytest.approx(0.0)  # the diameter pair
        assert sim[0, 2] == pytest.approx(1.0 - 1.0 / 5.0)

    def test_coincident_points(self):
        tasks = [
            make_task(0, "a", features=(1.0, 1.0)),
            make_task(1, "b", features=(1.0, 1.0)),
        ]
        sim = euclidean_similarity(tasks)
        assert sim[0, 1] == pytest.approx(1.0)


class TestClassifier:
    def test_binary_output(self):
        tasks = [make_task(i, "t", domain=d)
                 for i, d in enumerate(["x", "x", "y"])]
        sim = classifier_similarity(
            tasks, classifier=lambda a, b: a.domain == b.domain
        )
        assert sim[0, 1] == 1.0
        assert sim[0, 2] == 0.0
        assert np.allclose(sim, sim.T)


class TestDispatch:
    def test_dispatches_each_measure(self):
        tasks = [
            make_task(0, "a b", features=(0.0,)),
            make_task(1, "b c", features=(1.0,)),
        ]
        for measure in ("jaccard", "tfidf", "euclidean"):
            sim = compute_similarity(tasks, measure)
            assert sim.shape == (2, 2)

    def test_classifier_requires_callable(self):
        tasks = [make_task(0, "a"), make_task(1, "b")]
        with pytest.raises(ValueError, match="classifier"):
            compute_similarity(tasks, "classifier")

    def test_unknown_measure(self):
        with pytest.raises(ValueError, match="unknown"):
            compute_similarity([], "nope")
