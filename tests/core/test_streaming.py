"""Unit tests for incremental task insertion (Section 6.5 protocol)."""

import pytest

from repro.core.streaming import GrowableGraph, StreamingAssigner
from repro.utils.rng import spawn_rng


class TestGrowableGraph:
    def test_add_tasks(self):
        graph = GrowableGraph()
        first = graph.add_tasks(3)
        assert list(first) == [0, 1, 2]
        second = graph.add_tasks(2)
        assert list(second) == [3, 4]
        assert graph.num_tasks == 5
        assert graph.num_edges == 0

    def test_add_edge_updates_degrees(self):
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 2, 1.0)
        assert graph.degree(1) == pytest.approx(1.5)
        assert graph.num_edges == 2

    def test_edge_overwrite_adjusts_degree(self):
        graph = GrowableGraph()
        graph.add_tasks(2)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(0, 1, 0.8)
        assert graph.degree(0) == pytest.approx(0.8)
        assert graph.num_edges == 1

    def test_normalized_row_formula(self):
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        row = graph.normalized_row(1)
        # d_1 = 2, d_0 = d_2 = 1 → entries 1/sqrt(2)
        assert row[0] == pytest.approx(2 ** -0.5)
        assert row[2] == pytest.approx(2 ** -0.5)

    def test_normalization_tracks_growth(self):
        """Inserting an edge later must change earlier rows' values."""
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 1.0)
        before = graph.normalized_row(0)[1]
        graph.add_edge(1, 2, 1.0)  # raises d_1
        after = graph.normalized_row(0)[1]
        assert after < before

    def test_isolated_row_empty(self):
        graph = GrowableGraph()
        graph.add_tasks(1)
        assert graph.normalized_row(0) == {}

    def test_validation(self):
        graph = GrowableGraph()
        graph.add_tasks(2)
        with pytest.raises(ValueError):
            graph.add_tasks(-1)
        with pytest.raises(ValueError):
            graph.add_edge(0, 5, 1.0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, 1.0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0.0)

    def test_zero_count_batch_is_valid(self):
        """Regression: edge-only insertion rounds pass count == 0."""
        graph = GrowableGraph()
        graph.add_tasks(2)
        empty = graph.add_tasks(0)
        assert list(empty) == []
        assert graph.num_tasks == 2

    def test_change_journal_tracks_dirty_neighborhoods(self):
        graph = GrowableGraph()
        graph.add_tasks(4)
        graph.add_edge(0, 1, 1.0)
        graph.mark_clean()
        assert graph.delta().is_clean
        # 1's degree changes, so row 0 (holding entry (0,1)) is dirty too
        graph.add_edge(1, 2, 1.0)
        delta = graph.delta()
        assert delta.dirty_rows == (0, 1, 2)
        assert list(delta.new_tasks) == []
        # non-destructive: delta() again gives the same answer
        assert graph.delta().dirty_rows == (0, 1, 2)
        flushed = graph.mark_clean()
        assert flushed.dirty_rows == (0, 1, 2)
        assert graph.delta().is_clean

    def test_journal_skips_noop_edge_rewrite(self):
        graph = GrowableGraph()
        graph.add_tasks(2)
        graph.add_edge(0, 1, 0.5)
        graph.mark_clean()
        graph.add_edge(0, 1, 0.5)  # identical weight: S' untouched
        assert graph.delta().is_clean
        graph.add_edge(0, 1, 0.75)  # real change
        assert graph.delta().dirty_rows == (0, 1)

    def test_journal_records_new_tasks(self):
        graph = GrowableGraph()
        graph.add_tasks(2)
        graph.mark_clean()
        graph.add_tasks(3)
        delta = graph.delta()
        assert delta.base_tasks == 2
        assert list(delta.new_tasks) == [2, 3, 4]
        assert not delta.is_clean

    def test_similarity_csr_roundtrips_raw_weights(self):
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 2, 0.8)
        sim = graph.similarity_csr()
        assert sim.shape == (3, 3)
        assert sim[0, 1] == pytest.approx(0.5)
        assert sim[1, 0] == pytest.approx(0.5)
        assert sim[1, 2] == pytest.approx(0.8)
        assert sim.nnz == 4


def build_assigner(num_tasks=30, k=2, seed=0):
    rng = spawn_rng(seed, "streaming-test")
    graph = GrowableGraph()
    graph.add_tasks(num_tasks)
    for i in range(num_tasks):
        for _ in range(3):
            j = int(rng.integers(0, num_tasks))
            if j != i:
                graph.add_edge(i, j, float(rng.uniform(0.5, 1.0)))
    return StreamingAssigner(graph, damping=0.5, k=k)


class TestStreamingAssigner:
    def test_completes_initial_batch(self):
        assigner = build_assigner(num_tasks=20, k=2)
        for r in range(200):
            worker = f"w{r % 4}"
            task = assigner.request(worker)
            if task is None:
                break
            assigner.answer(worker, task, 0.8)
            if assigner.num_completed == 20:
                break
        assert assigner.num_completed == 20

    def test_inserted_tasks_get_served(self):
        assigner = build_assigner(num_tasks=10, k=1)
        # drain the initial batch
        for r in range(10):
            task = assigner.request(f"w{r}")
            assigner.answer(f"w{r}", task, 0.9)
        assert assigner.num_completed == 10
        new_ids = assigner.insert_tasks(
            5, edges=[(10, 11, 0.8), (12, 3, 0.6)]
        )
        assert list(new_ids) == [10, 11, 12, 13, 14]
        served = set()
        for r in range(5):
            task = assigner.request(f"v{r}")
            assert task in set(new_ids)
            served.add(task)
            assigner.answer(f"v{r}", task, 0.9)
        assert served == set(new_ids)

    def test_no_worker_sees_task_twice_across_insertions(self):
        assigner = build_assigner(num_tasks=8, k=3)
        seen: dict[str, set[int]] = {}
        for round_index in range(3):
            if round_index:
                assigner.insert_tasks(4)
            for r in range(12):
                worker = f"w{r % 3}"
                task = assigner.request(worker)
                if task is None:
                    break
                assert task not in seen.setdefault(worker, set())
                seen[worker].add(task)
                assigner.answer(worker, task, 0.7)

    def test_insert_edges_to_existing_tasks(self):
        assigner = build_assigner(num_tasks=5, k=1)
        new_ids = assigner.insert_tasks(1, edges=[(5, 0, 0.9)])
        assert assigner.graph.degree(5) == pytest.approx(0.9)
        assert 0 in assigner.graph.neighbors(5)

    def test_observation_spreads_to_neighbors(self):
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 1.0)
        assigner = StreamingAssigner(graph, damping=0.5, k=3)
        assigner.observe("w", 0, 1.0)
        index = assigner._indexes["w"]
        assert index.value(0) > 0.5
        assert index.value(1) > 0.5
        assert index.value(2) == 0.5  # disconnected

    def test_validation(self):
        graph = GrowableGraph()
        graph.add_tasks(1)
        with pytest.raises(ValueError):
            StreamingAssigner(graph, damping=1.5)
        with pytest.raises(ValueError):
            StreamingAssigner(graph, damping=0.5, k=0)

    def test_insert_zero_tasks_with_edges(self):
        """Regression: an edge-only batch between existing tasks used to
        raise ValueError out of ``GrowableGraph.add_tasks(0)``."""
        assigner = build_assigner(num_tasks=5, k=1)
        new_ids = assigner.insert_tasks(0, edges=[(0, 4, 0.9)])
        assert list(new_ids) == []
        assert assigner.graph.neighbors(0)[4] == pytest.approx(0.9)

    def test_request_survives_frontier_fallthrough(self):
        """Regression: when ``pop_best`` popped a below-prior task and a
        frontier candidate was served instead, the popped heap entry was
        silently consumed — the task could never again be served by
        estimate order."""
        graph = GrowableGraph()
        graph.add_tasks(1)  # task 0, isolated
        assigner = StreamingAssigner(graph, damping=0.5, k=5)
        # another worker drains the frontier so 0 is out of it but not
        # in w's seen set
        assert assigner.request("v") == 0
        # below-prior evidence for w on task 0
        assigner.observe("w", 0, 0.2)
        assigner.insert_tasks(1)
        # pop_best pops 0 (<= prior), the new task is served instead
        assert assigner.request("w") == 1
        # the heap entry must have been restored: 0 is still reachable
        assert assigner.request("w") == 0

    def test_streaming_matches_scalable_on_frozen_graph(self):
        """Differential: on a frozen graph, the streaming assigner and
        ``ScalableAssigner`` (one-hop mode) serve identical sequences —
        their observe/request logic is the same math."""
        from repro.core.indexes import ScalableAssigner

        rng = spawn_rng(7, "streaming-differential")
        graph = GrowableGraph()
        graph.add_tasks(12)
        for i in range(12):
            for _ in range(2):
                j = int(rng.integers(0, 12))
                if j != i:
                    graph.add_edge(i, j, float(rng.uniform(0.5, 1.0)))
        streaming = StreamingAssigner(graph, damping=0.5, k=2)
        scalable = ScalableAssigner(
            graph.normalized_csr(), damping=0.5, k=2,
            neighborhood_only=True,
        )
        for step in range(60):
            worker = f"w{step % 3}"
            expected = scalable.request(worker)
            actual = streaming.request(worker)
            assert actual == expected
            if expected is None:
                continue
            observed = float(rng.uniform(0.0, 1.0))
            scalable.answer(worker, expected, observed)
            streaming.answer(worker, expected, observed)
        assert streaming.num_completed == scalable.num_completed
