"""Unit tests for incremental task insertion (Section 6.5 protocol)."""

import pytest

from repro.core.streaming import GrowableGraph, StreamingAssigner
from repro.utils.rng import spawn_rng


class TestGrowableGraph:
    def test_add_tasks(self):
        graph = GrowableGraph()
        first = graph.add_tasks(3)
        assert list(first) == [0, 1, 2]
        second = graph.add_tasks(2)
        assert list(second) == [3, 4]
        assert graph.num_tasks == 5
        assert graph.num_edges == 0

    def test_add_edge_updates_degrees(self):
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(1, 2, 1.0)
        assert graph.degree(1) == pytest.approx(1.5)
        assert graph.num_edges == 2

    def test_edge_overwrite_adjusts_degree(self):
        graph = GrowableGraph()
        graph.add_tasks(2)
        graph.add_edge(0, 1, 0.5)
        graph.add_edge(0, 1, 0.8)
        assert graph.degree(0) == pytest.approx(0.8)
        assert graph.num_edges == 1

    def test_normalized_row_formula(self):
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        row = graph.normalized_row(1)
        # d_1 = 2, d_0 = d_2 = 1 → entries 1/sqrt(2)
        assert row[0] == pytest.approx(2 ** -0.5)
        assert row[2] == pytest.approx(2 ** -0.5)

    def test_normalization_tracks_growth(self):
        """Inserting an edge later must change earlier rows' values."""
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 1.0)
        before = graph.normalized_row(0)[1]
        graph.add_edge(1, 2, 1.0)  # raises d_1
        after = graph.normalized_row(0)[1]
        assert after < before

    def test_isolated_row_empty(self):
        graph = GrowableGraph()
        graph.add_tasks(1)
        assert graph.normalized_row(0) == {}

    def test_validation(self):
        graph = GrowableGraph()
        graph.add_tasks(2)
        with pytest.raises(ValueError):
            graph.add_tasks(0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 5, 1.0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 0, 1.0)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0.0)


def build_assigner(num_tasks=30, k=2, seed=0):
    rng = spawn_rng(seed, "streaming-test")
    graph = GrowableGraph()
    graph.add_tasks(num_tasks)
    for i in range(num_tasks):
        for _ in range(3):
            j = int(rng.integers(0, num_tasks))
            if j != i:
                graph.add_edge(i, j, float(rng.uniform(0.5, 1.0)))
    return StreamingAssigner(graph, damping=0.5, k=k)


class TestStreamingAssigner:
    def test_completes_initial_batch(self):
        assigner = build_assigner(num_tasks=20, k=2)
        for r in range(200):
            worker = f"w{r % 4}"
            task = assigner.request(worker)
            if task is None:
                break
            assigner.answer(worker, task, 0.8)
            if assigner.num_completed == 20:
                break
        assert assigner.num_completed == 20

    def test_inserted_tasks_get_served(self):
        assigner = build_assigner(num_tasks=10, k=1)
        # drain the initial batch
        for r in range(10):
            task = assigner.request(f"w{r}")
            assigner.answer(f"w{r}", task, 0.9)
        assert assigner.num_completed == 10
        new_ids = assigner.insert_tasks(
            5, edges=[(10, 11, 0.8), (12, 3, 0.6)]
        )
        assert list(new_ids) == [10, 11, 12, 13, 14]
        served = set()
        for r in range(5):
            task = assigner.request(f"v{r}")
            assert task in set(new_ids)
            served.add(task)
            assigner.answer(f"v{r}", task, 0.9)
        assert served == set(new_ids)

    def test_no_worker_sees_task_twice_across_insertions(self):
        assigner = build_assigner(num_tasks=8, k=3)
        seen: dict[str, set[int]] = {}
        for round_index in range(3):
            if round_index:
                assigner.insert_tasks(4)
            for r in range(12):
                worker = f"w{r % 3}"
                task = assigner.request(worker)
                if task is None:
                    break
                assert task not in seen.setdefault(worker, set())
                seen[worker].add(task)
                assigner.answer(worker, task, 0.7)

    def test_insert_edges_to_existing_tasks(self):
        assigner = build_assigner(num_tasks=5, k=1)
        new_ids = assigner.insert_tasks(1, edges=[(5, 0, 0.9)])
        assert assigner.graph.degree(5) == pytest.approx(0.9)
        assert 0 in assigner.graph.neighbors(5)

    def test_observation_spreads_to_neighbors(self):
        graph = GrowableGraph()
        graph.add_tasks(3)
        graph.add_edge(0, 1, 1.0)
        assigner = StreamingAssigner(graph, damping=0.5, k=3)
        assigner.observe("w", 0, 1.0)
        index = assigner._indexes["w"]
        assert index.value(0) > 0.5
        assert index.value(1) > 0.5
        assert index.value(2) == 0.5  # disconnected

    def test_validation(self):
        graph = GrowableGraph()
        graph.add_tasks(1)
        with pytest.raises(ValueError):
            StreamingAssigner(graph, damping=1.5)
        with pytest.raises(ValueError):
            StreamingAssigner(graph, damping=0.5, k=0)
