"""Unit tests for worker performance testing (Section 4.1, Step 3)."""

import numpy as np
import pytest

from repro.core.assigner import TaskState
from repro.core.testing import PerformanceTester, beta_variance


class TestBetaVariance:
    def test_uninformed_maximum(self):
        """Beta(1,1) has the maximal variance 1/12."""
        assert beta_variance(0, 0) == pytest.approx(1 / 12)

    def test_decreases_with_evidence(self):
        assert beta_variance(5, 5) < beta_variance(1, 1) < beta_variance(0, 0)

    def test_paper_formula(self):
        """(N1+1)(N0+1) / ((N1+N0+2)^2 (N1+N0+3)) for N1=3, N0=1."""
        expected = (4 * 2) / ((6**2) * 7)
        assert beta_variance(3, 1) == pytest.approx(expected)

    def test_fractional_counts_allowed(self):
        assert 0 < beta_variance(0.5, 0.4) <= 1 / 12

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            beta_variance(-1, 0)


class TestPerformanceTester:
    def make_tester(self, graph, observed=None, weight=0.5):
        observed = observed or {}
        return PerformanceTester(
            graph,
            observed_of=lambda w: observed.get(w, {}),
            uncertainty_weight=weight,
        )

    def test_uncertainty_max_without_observations(self, two_cliques):
        tester = self.make_tester(two_cliques)
        assert tester.uncertainty("w", 0) == pytest.approx(1.0)

    def test_uncertainty_drops_with_neighborhood_evidence(self, two_cliques):
        tester = self.make_tester(
            two_cliques, observed={"w": {0: 1.0, 1: 1.0, 2: 0.0}}
        )
        # node 0's neighbourhood {0,1,2} has three observations
        assert tester.uncertainty("w", 0) < 1.0
        # the other clique is untouched
        assert tester.uncertainty("w", 3) == pytest.approx(1.0)

    def test_coworker_quality_mean(self, two_cliques):
        tester = self.make_tester(two_cliques)
        state = TaskState(task_id=0, k=3, assigned_workers={"a", "b"})
        acc = {"a": np.full(6, 0.9), "b": np.full(6, 0.5)}
        assert tester.coworker_quality(state, acc) == pytest.approx(0.7)

    def test_coworker_quality_uses_prior_for_unknown(self, two_cliques):
        tester = self.make_tester(two_cliques)
        state = TaskState(task_id=0, k=3, assigned_workers={"mystery"})
        assert tester.coworker_quality(state, {}) == pytest.approx(0.5)

    def test_choose_skips_seen_tasks(self, two_cliques):
        tester = self.make_tester(two_cliques)
        states = [
            TaskState(task_id=0, k=3, assigned_workers={"w", "x"}),
            TaskState(task_id=1, k=3, assigned_workers={"x"}),
        ]
        acc = {"x": np.full(6, 0.8)}
        chosen = tester.choose_test_task("w", states, acc)
        assert chosen == 1

    def test_choose_requires_coworkers(self, two_cliques):
        tester = self.make_tester(two_cliques)
        states = [TaskState(task_id=0, k=3)]  # nobody assigned
        assert tester.choose_test_task("w", states, {}) is None

    def test_prefers_uncertain_region(self, two_cliques):
        """Worker with evidence around clique 1 should be tested in
        clique 2 (higher estimation variance there)."""
        tester = self.make_tester(
            two_cliques,
            observed={"w": {0: 1.0, 1: 1.0, 2: 1.0}},
            weight=1.0,  # uncertainty only
        )
        states = [
            TaskState(task_id=1, k=3, assigned_workers={"x"}),
            TaskState(task_id=4, k=3, assigned_workers={"x"}),
        ]
        acc = {"x": np.full(6, 0.8)}
        assert tester.choose_test_task("w", states, acc) == 4

    def test_prefers_reliable_coworkers(self, two_cliques):
        """With weight 0, the co-worker quality factor decides."""
        tester = self.make_tester(two_cliques, weight=0.0)
        states = [
            TaskState(task_id=0, k=3, assigned_workers={"good"}),
            TaskState(task_id=3, k=3, assigned_workers={"bad"}),
        ]
        acc = {"good": np.full(6, 0.95), "bad": np.full(6, 0.3)}
        assert tester.choose_test_task("w", states, acc) == 0

    def test_rejects_bad_weight(self, two_cliques):
        with pytest.raises(ValueError):
            PerformanceTester(
                two_cliques, observed_of=lambda w: {}, uncertainty_weight=2.0
            )
