"""Unit tests for core value types."""

import pytest

from repro.core.types import (
    Answer,
    Label,
    Task,
    TaskSet,
    VoteState,
)


class TestLabel:
    def test_flipped_is_involution(self):
        assert Label.YES.flipped() is Label.NO
        assert Label.NO.flipped() is Label.YES
        assert Label.YES.flipped().flipped() is Label.YES

    def test_from_bool(self):
        assert Label.from_bool(True) is Label.YES
        assert Label.from_bool(False) is Label.NO

    def test_int_values_match_binary_convention(self):
        assert int(Label.NO) == 0
        assert int(Label.YES) == 1


class TestTask:
    def test_tokens_are_lowercased(self):
        task = Task(0, "iPhone 4 WiFi", "phones", Label.YES)
        assert task.tokens() == frozenset({"iphone", "4", "wifi"})

    def test_tokens_deduplicate(self):
        task = Task(0, "a a b", "d", Label.NO)
        assert task.tokens() == frozenset({"a", "b"})

    def test_frozen(self):
        task = Task(0, "x", "d", Label.NO)
        with pytest.raises(AttributeError):
            task.text = "y"


class TestAnswer:
    def test_is_correct(self):
        answer = Answer(task_id=3, worker_id="w1", label=Label.YES)
        assert answer.is_correct(Label.YES)
        assert not answer.is_correct(Label.NO)


class TestTaskSet:
    def test_rejects_non_dense_ids(self):
        tasks = [Task(1, "x", "d", Label.NO)]
        with pytest.raises(ValueError, match="dense"):
            TaskSet(tasks)

    def test_len_and_indexing(self):
        tasks = TaskSet(
            [Task(i, f"t{i}", "d", Label.NO) for i in range(4)]
        )
        assert len(tasks) == 4
        assert tasks[2].text == "t2"
        assert list(tasks.ids()) == [0, 1, 2, 3]

    def test_domains_in_first_appearance_order(self):
        tasks = TaskSet(
            [
                Task(0, "a", "beta", Label.NO),
                Task(1, "b", "alpha", Label.NO),
                Task(2, "c", "beta", Label.NO),
            ]
        )
        assert tasks.domains() == ["beta", "alpha"]

    def test_by_domain(self):
        tasks = TaskSet(
            [
                Task(0, "a", "x", Label.NO),
                Task(1, "b", "y", Label.NO),
                Task(2, "c", "x", Label.NO),
            ]
        )
        assert [t.task_id for t in tasks.by_domain("x")] == [0, 2]

    def test_truths(self):
        tasks = TaskSet(
            [
                Task(0, "a", "x", Label.YES),
                Task(1, "b", "x", Label.NO),
            ]
        )
        assert tasks.truths() == [Label.YES, Label.NO]


class TestVoteState:
    def test_rejects_duplicate_worker(self):
        state = VoteState(task_id=0, k=3)
        state.add(Answer(0, "w1", Label.YES))
        with pytest.raises(ValueError, match="already answered"):
            state.add(Answer(0, "w1", Label.NO))

    def test_completion_at_k(self):
        state = VoteState(task_id=0, k=3)
        for i, label in enumerate([Label.YES, Label.NO, Label.YES]):
            assert not state.is_complete()
            state.add(Answer(0, f"w{i}", label))
        assert state.is_complete()

    def test_consensus_majority(self):
        state = VoteState(task_id=0, k=3)
        state.add(Answer(0, "w1", Label.YES))
        state.add(Answer(0, "w2", Label.YES))
        state.add(Answer(0, "w3", Label.NO))
        assert state.consensus() is Label.YES
        result = state.result()
        assert result.votes_yes == 2
        assert result.votes_no == 1
        assert result.margin == 1
        assert result.total_votes == 3

    def test_tie_breaks_to_no(self):
        state = VoteState(task_id=0, k=2)
        state.add(Answer(0, "w1", Label.YES))
        state.add(Answer(0, "w2", Label.NO))
        assert state.consensus() is Label.NO

    def test_workers(self):
        state = VoteState(task_id=0, k=3)
        state.add(Answer(0, "a", Label.YES))
        state.add(Answer(0, "b", Label.NO))
        assert state.workers() == {"a", "b"}
