"""Unit tests for shared dataset plumbing."""

import pytest

from repro.core.types import Label
from repro.datasets import make_yahooqa
from repro.datasets.base import DatasetSpec, build_task_set


class TestBuildTaskSet:
    def test_assigns_dense_ids(self):
        rows = [
            ("text one", "a", Label.YES),
            ("text two", "b", Label.NO),
        ]
        tasks = build_task_set(rows)
        assert [t.task_id for t in tasks] == [0, 1]
        assert tasks[1].domain == "b"
        assert tasks[0].truth is Label.YES

    def test_empty(self):
        assert len(build_task_set([])) == 0


class TestDatasetSpec:
    def test_of_computes_statistics(self):
        tasks = make_yahooqa(seed=0)
        spec = DatasetSpec.of("YahooQA", tasks)
        assert spec.num_tasks == 110
        assert spec.num_domains == 6
        assert spec.domains[0] == "FIFA"

    def test_frozen(self):
        tasks = make_yahooqa(seed=0)
        spec = DatasetSpec.of("x", tasks)
        with pytest.raises(AttributeError):
            spec.name = "y"
