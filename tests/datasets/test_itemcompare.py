"""Unit tests for the ItemCompare dataset generator."""

import pytest

from repro.core.types import Label
from repro.datasets.itemcompare import (
    DOMAINS,
    ITEMCOMPARE_DOMAINS,
    make_itemcompare,
    truth_of_pair,
)


class TestGeneration:
    def test_table4_statistics(self):
        tasks = make_itemcompare(seed=0)
        assert len(tasks) == 360
        assert tasks.domains() == list(ITEMCOMPARE_DOMAINS)
        for domain in ITEMCOMPARE_DOMAINS:
            assert len(tasks.by_domain(domain)) == 90

    def test_scaling(self):
        tasks = make_itemcompare(seed=0, tasks_per_domain=10)
        assert len(tasks) == 40

    def test_deterministic(self):
        a = make_itemcompare(seed=3)
        b = make_itemcompare(seed=3)
        assert [t.text for t in a] == [t.text for t in b]

    def test_seeds_differ(self):
        a = make_itemcompare(seed=1)
        b = make_itemcompare(seed=2)
        assert [t.text for t in a] != [t.text for t in b]

    def test_truth_consistent_with_knowledge_base(self):
        """Every generated task's label must follow from the items'
        attribute values."""
        tasks = make_itemcompare(seed=5, tasks_per_domain=30)
        for task in tasks:
            domain = DOMAINS[task.domain]
            values = dict(domain.items)
            present = [
                name for name in values if name in task.text
            ]
            # both item names appear in the text
            assert len(present) >= 2

    def test_labels_roughly_balanced(self):
        tasks = make_itemcompare(seed=0)
        yes = sum(1 for t in tasks if t.truth is Label.YES)
        assert 0.3 < yes / len(tasks) < 0.7

    def test_no_duplicate_pairs_within_domain(self):
        tasks = make_itemcompare(seed=0)
        texts = [t.text for t in tasks]
        assert len(set(texts)) == len(texts)

    def test_domain_vocabulary_present(self):
        tasks = make_itemcompare(seed=0, tasks_per_domain=5)
        for task in tasks.by_domain("NBA"):
            assert "nba" in task.text
        for task in tasks.by_domain("Food"):
            assert "calories" in task.text

    def test_too_many_tasks_requested(self):
        with pytest.raises(ValueError, match="cannot supply"):
            make_itemcompare(seed=0, tasks_per_domain=1000)


class TestTruthOfPair:
    def test_known_comparison(self):
        # paper example: 2014 Toyota Camry vs 2014 Lexus ES (mpg)
        assert truth_of_pair(
            "Auto", "toyota camry sedan", "lexus es sedan"
        ) is Label.YES

    def test_reverse_order_flips(self):
        assert truth_of_pair(
            "Auto", "lexus es sedan", "toyota camry sedan"
        ) is Label.NO

    def test_unknown_domain(self):
        with pytest.raises(ValueError, match="domain"):
            truth_of_pair("Movies", "a", "b")

    def test_unknown_item(self):
        with pytest.raises(ValueError, match="unknown item"):
            truth_of_pair("Food", "pizza slice", "honey")
