"""Unit tests for the POI dataset and the Euclidean similarity path."""

import numpy as np
import pytest

from repro.core.config import GraphConfig
from repro.core.graph import SimilarityGraph
from repro.datasets.poi import NEIGHBORHOODS, make_poi


class TestGeneration:
    def test_sizes(self):
        tasks = make_poi(seed=0, tasks_per_neighborhood=10)
        assert len(tasks) == 10 * len(NEIGHBORHOODS)
        assert set(tasks.domains()) == set(NEIGHBORHOODS)

    def test_every_task_has_features(self):
        tasks = make_poi(seed=0)
        assert all(t.features is not None for t in tasks)
        assert all(len(t.features) == 2 for t in tasks)

    def test_labels_balanced(self):
        tasks = make_poi(seed=0, tasks_per_neighborhood=20)
        yes = sum(1 for t in tasks if int(t.truth) == 1)
        assert yes == len(tasks) // 2

    def test_deterministic(self):
        a = make_poi(seed=5)
        b = make_poi(seed=5)
        assert [t.features for t in a] == [t.features for t in b]

    def test_clusters_are_spatially_separated(self):
        tasks = make_poi(seed=0, cluster_std=0.5)
        for domain, (cx, cy) in NEIGHBORHOODS.items():
            points = np.array(
                [t.features for t in tasks.by_domain(domain)]
            )
            centre = points.mean(axis=0)
            assert abs(centre[0] - cx) < 1.0
            assert abs(centre[1] - cy) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_poi(tasks_per_neighborhood=0)
        with pytest.raises(ValueError):
            make_poi(cluster_std=0.0)


class TestEuclideanGraph:
    def test_graph_clusters_by_neighborhood(self):
        """The Euclidean similarity graph at a high threshold must keep
        neighbourhood clusters mostly pure (the Section 3.3 case 2
        behaviour the estimator relies on)."""
        tasks = make_poi(seed=0, tasks_per_neighborhood=15,
                         cluster_std=0.5)
        graph = SimilarityGraph.from_tasks(
            list(tasks), GraphConfig(measure="euclidean", threshold=0.9)
        )
        matrix = graph.matrix.tocoo()
        intra = inter = 0
        for i, j in zip(matrix.row, matrix.col):
            if i < j:
                if tasks[int(i)].domain == tasks[int(j)].domain:
                    intra += 1
                else:
                    inter += 1
        assert intra > 0
        assert intra / max(intra + inter, 1) > 0.9

    def test_estimation_over_euclidean_graph(self):
        """End-to-end: evidence in one neighbourhood propagates there
        and not to distant neighbourhoods."""
        from repro.core.estimator import AccuracyEstimator

        tasks = make_poi(seed=0, tasks_per_neighborhood=10,
                         cluster_std=0.5)
        graph = SimilarityGraph.from_tasks(
            list(tasks), GraphConfig(measure="euclidean", threshold=0.9)
        )
        estimator = AccuracyEstimator(graph)
        downtown = [t.task_id for t in tasks.by_domain("Downtown")]
        airport = [t.task_id for t in tasks.by_domain("Airport")]
        estimate = estimator.estimate({downtown[0]: 1.0, downtown[1]: 1.0})
        mean_downtown = np.mean([estimate[t] for t in downtown])
        mean_airport = np.mean([estimate[t] for t in airport])
        assert mean_downtown > mean_airport
