"""Unit tests for the YahooQA dataset generator."""

from repro.core.types import Label
from repro.datasets.yahooqa import (
    DOMAIN_SIZES,
    QA_DOMAINS,
    YAHOOQA_DOMAINS,
    make_yahooqa,
)


class TestGeneration:
    def test_table4_statistics(self):
        tasks = make_yahooqa(seed=0)
        assert len(tasks) == 110
        assert tasks.domains() == list(YAHOOQA_DOMAINS)
        assert len(tasks.domains()) == 6

    def test_domain_sizes_sum_to_110(self):
        assert sum(DOMAIN_SIZES.values()) == 110
        tasks = make_yahooqa(seed=1)
        for domain, size in DOMAIN_SIZES.items():
            assert len(tasks.by_domain(domain)) == size

    def test_deterministic(self):
        a = make_yahooqa(seed=4)
        b = make_yahooqa(seed=4)
        assert [t.text for t in a] == [t.text for t in b]

    def test_labels_roughly_balanced(self):
        tasks = make_yahooqa(seed=0)
        yes = sum(1 for t in tasks if t.truth is Label.YES)
        assert 0.35 < yes / len(tasks) < 0.65

    def test_yes_tasks_pair_question_with_its_answer(self):
        tasks = make_yahooqa(seed=0)
        matched = dict(
            pair for d in QA_DOMAINS.values() for pair in d.qa_pairs
        )
        for task in tasks:
            if task.truth is not Label.YES:
                continue
            question = task.text.split(" answer ")[0].removeprefix(
                "question "
            )
            answer = task.text.split(" answer ", 1)[1]
            assert matched[question] == answer

    def test_no_tasks_pair_question_with_wrong_answer(self):
        tasks = make_yahooqa(seed=0)
        matched = dict(
            pair for d in QA_DOMAINS.values() for pair in d.qa_pairs
        )
        for task in tasks:
            if task.truth is not Label.NO:
                continue
            question = task.text.split(" answer ")[0].removeprefix(
                "question "
            )
            answer = task.text.split(" answer ", 1)[1]
            assert matched[question] != answer

    def test_task_text_format(self):
        tasks = make_yahooqa(seed=0)
        for task in tasks:
            assert task.text.startswith("question ")
            assert " answer " in task.text
