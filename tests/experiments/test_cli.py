"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table5" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "--dataset", "imagenet"])

    def test_standard_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.dataset == "itemcompare"
        assert args.seed == 7
        assert args.scale == pytest.approx(0.33)

    def test_fig10_arguments(self):
        args = build_parser().parse_args(
            ["fig10", "--sizes", "1000", "2000", "--neighbors", "5"]
        )
        assert args.sizes == [1000, 2000]
        assert args.neighbors == [5]


class TestExecution:
    def test_table4_prints_statistics(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "110" in out
        assert "360" in out

    def test_fig10_tiny_run(self, capsys):
        assert main(
            [
                "fig10",
                "--sizes", "500", "1000",
                "--neighbors", "5",
                "--requests", "50",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out

    def test_table5_small(self, capsys):
        assert main(["table5", "--workers", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "approximation error" in out


class TestTelemetryFormats:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["telemetry", "itemcompare"])
        assert args.faults == 0.0
        assert args.format == "table"
        assert args.profile is None

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli") / "trace.jsonl"

    def test_table_format(self, trace_path, capsys):
        assert main(
            [
                "telemetry", "itemcompare",
                "--scale", "0.05",
                "--trace", str(trace_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "platform.run" in out
        assert "SLO" in out

    def test_json_format(self, trace_path, capsys):
        assert main(
            [
                "telemetry", "itemcompare",
                "--scale", "0.05",
                "--trace", str(trace_path),
                "--format", "json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dataset"] == "itemcompare"
        assert payload["slo"] is not None
        assert any(
            row["name"] == "platform.run" for row in payload["spans"]
        )


class TestTimelineCommand:
    @pytest.fixture
    def trace_file(self, tmp_path):
        records = [
            {
                "type": "span", "name": "server.request",
                "trace_id": "ab" * 16, "span_id": "cd" * 8,
                "parent_id": None, "start": 1.0, "elapsed": 0.2,
            },
            {"type": "assign", "step": 1, "worker_id": "w1",
             "task_id": 0, "is_test": False},
            {"type": "answer", "step": 2, "worker_id": "w1",
             "task_id": 0, "label": 1, "is_test": False},
            {"type": "complete", "step": 2, "task_id": 0, "consensus": 1},
        ]
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return path

    def test_table_output(self, trace_file, capsys):
        assert main(["timeline", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "1 tasks" in out
        assert "aggregated@2" in out

    def test_single_task_view(self, trace_file, capsys):
        assert main(["timeline", str(trace_file), "--task", "0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("task     0: created@0")

    def test_json_output(self, trace_file, capsys):
        assert main(
            ["timeline", str(trace_file), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tasks"] == 1
        assert payload["complete"] == 1

    def test_chrome_export_with_validation(
        self, trace_file, tmp_path, capsys
    ):
        chrome = tmp_path / "chrome.json"
        assert main(
            [
                "timeline", str(trace_file),
                "--chrome", str(chrome),
                "--validate",
            ]
        ) == 0
        assert f"wrote {chrome}" in capsys.readouterr().out
        trace = json.loads(chrome.read_text())
        assert trace["traceEvents"]


class TestInsertionFlag:
    def test_fig10_insertion_protocol(self, capsys):
        assert main(
            [
                "fig10",
                "--sizes", "800", "800",
                "--neighbors", "4",
                "--requests", "40",
                "--insertion",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "insertion protocol" in out
        # two rounds of 800 tasks each
        assert "1,600" in out
