"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table5" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "--dataset", "imagenet"])

    def test_standard_defaults(self):
        args = build_parser().parse_args(["fig9"])
        assert args.dataset == "itemcompare"
        assert args.seed == 7
        assert args.scale == pytest.approx(0.33)

    def test_fig10_arguments(self):
        args = build_parser().parse_args(
            ["fig10", "--sizes", "1000", "2000", "--neighbors", "5"]
        )
        assert args.sizes == [1000, 2000]
        assert args.neighbors == [5]


class TestExecution:
    def test_table4_prints_statistics(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "110" in out
        assert "360" in out

    def test_fig10_tiny_run(self, capsys):
        assert main(
            [
                "fig10",
                "--sizes", "500", "1000",
                "--neighbors", "5",
                "--requests", "50",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out

    def test_table5_small(self, capsys):
        assert main(["table5", "--workers", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "approximation error" in out


class TestInsertionFlag:
    def test_fig10_insertion_protocol(self, capsys):
        assert main(
            [
                "fig10",
                "--sizes", "800", "800",
                "--neighbors", "4",
                "--requests", "40",
                "--insertion",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "insertion protocol" in out
        # two rounds of 800 tasks each
        assert "1,600" in out
