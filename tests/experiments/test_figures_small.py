"""Fast unit coverage of the figure functions at tiny scales.

The benchmarks run these at meaningful scale and assert the paper's
shapes; here we only exercise the plumbing (structure of results,
table rendering, parameter handling) with the smallest usable
workloads.
"""

import pytest

from repro.experiments import (
    fig6_diversity,
    fig10_scalability,
    fig13_alpha,
    fig15_distribution,
    table4_datasets,
    table5_approximation,
)

SCALE = 0.08  # 7 tasks per domain
WORKERS_KW = {}


class TestTable4:
    def test_structure_and_rendering(self):
        result = table4_datasets(seed=1)
        text = result.format_table()
        assert "YahooQA" in text and "ItemCompare" in text
        assert len(result.specs) == 2


class TestFig6:
    def test_small_run(self):
        result = fig6_diversity(
            "itemcompare", seed=3, scale=SCALE, min_completed=3
        )
        text = result.format_table()
        assert "Figure 6" in text
        for worker, accs in result.per_worker.items():
            for domain, (count, accuracy) in accs.items():
                assert count > 0
                assert 0.0 <= accuracy <= 1.0


class TestFig10:
    def test_tiny_sizes(self):
        result = fig10_scalability(
            sizes=[500, 1000],
            neighbor_bounds=[4],
            num_workers=5,
            requests_per_size=50,
            seed=1,
        )
        assert set(result.elapsed) == {(500, 4), (1000, 4)}
        assert all(v >= 0 for v in result.elapsed.values())
        assert len(result.series(4)) == 2
        assert "Figure 10" in result.format_table()


class TestFig13:
    def test_alpha_keys_preserved(self):
        result = fig13_alpha(
            "itemcompare", seed=3, scale=SCALE, alphas=[1.0]
        )
        assert list(result.accuracy) == [1.0]
        assert result.best_alpha() == 1.0
        assert "alpha" in result.format_table()


class TestTable5:
    def test_small_instance(self):
        result = table5_approximation(
            "itemcompare",
            seed=3,
            scale=SCALE,
            worker_counts=[3, 4],
            max_tasks=10,
            num_snapshots=2,
        )
        assert set(result.error_percent) == {3, 4}
        for error in result.error_percent.values():
            assert error >= 0.0
        assert "approximation" in result.format_table()


class TestFig15:
    def test_share_monotone_in_n(self):
        result = fig15_distribution("itemcompare", seed=3, scale=SCALE)
        assert result.top_share(1) <= result.top_share(5) <= result.top_share(
            50
        )
        assert result.top_share(10**6) == pytest.approx(1.0)


class TestFig10Insertion:
    def test_tiny_insertion_run(self):
        from repro.experiments import fig10_insertion

        result = fig10_insertion(
            batch_size=400,
            rounds=3,
            max_neighbors=4,
            num_workers=4,
            requests_per_round=30,
            seed=2,
        )
        assert len(result.elapsed_per_round) == 3
        assert all(v >= 0 for v in result.elapsed_per_round)
        table = result.format_table()
        assert "insertion protocol" in table
        assert "1,200" in table  # cumulative total after round 3
