"""Unit tests for evaluation metrics."""

import pytest

from repro.core.types import Label, Task, TaskSet
from repro.experiments.metrics import (
    ConfusionCounts,
    confusion,
    cost_report,
)


def make_tasks(truths):
    return TaskSet(
        [
            Task(i, f"t{i}", "d", truth)
            for i, truth in enumerate(truths)
        ]
    )


class TestConfusionCounts:
    def test_perfect(self):
        counts = ConfusionCounts(5, 0, 5, 0)
        assert counts.accuracy == 1.0
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0

    def test_all_wrong(self):
        counts = ConfusionCounts(0, 5, 0, 5)
        assert counts.accuracy == 0.0
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0

    def test_known_values(self):
        counts = ConfusionCounts(3, 1, 4, 2)
        assert counts.accuracy == pytest.approx(0.7)
        assert counts.precision == pytest.approx(0.75)
        assert counts.recall == pytest.approx(0.6)
        assert counts.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)

    def test_degenerate_denominators(self):
        counts = ConfusionCounts(0, 0, 10, 0)
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert ConfusionCounts(0, 0, 0, 0).accuracy == 0.0


class TestConfusion:
    def test_counts_match_labels(self):
        tasks = make_tasks(
            [Label.YES, Label.YES, Label.NO, Label.NO]
        )
        predictions = {
            0: Label.YES,  # TP
            1: Label.NO,  # FN
            2: Label.YES,  # FP
            3: Label.NO,  # TN
        }
        counts = confusion(predictions, tasks)
        assert (counts.true_positive, counts.false_negative,
                counts.false_positive, counts.true_negative) == (1, 1, 1, 1)

    def test_exclusion(self):
        tasks = make_tasks([Label.YES, Label.NO])
        predictions = {0: Label.YES, 1: Label.YES}
        counts = confusion(predictions, tasks, exclude=[1])
        assert counts.total == 1
        assert counts.false_positive == 0

    def test_missing_predictions_skipped(self):
        tasks = make_tasks([Label.YES, Label.NO])
        counts = confusion({0: Label.YES}, tasks)
        assert counts.total == 1


class TestCostReport:
    class FakeReport:
        num_answers = 300
        total_cost = 3.0

        def accuracy(self, tasks, exclude=None):
            return 0.9

    def test_cost_metrics(self):
        tasks = make_tasks([Label.YES])
        report = cost_report(self.FakeReport(), tasks)
        assert report.accuracy == 0.9
        assert report.cost_per_task_point == pytest.approx(3.0 / 90.0)
        assert report.answers_per_accuracy_point == pytest.approx(
            300 / 90.0
        )

    def test_zero_accuracy_safe(self):
        class ZeroReport(self.FakeReport):
            def accuracy(self, tasks, exclude=None):
                return 0.0

        tasks = make_tasks([Label.YES])
        report = cost_report(ZeroReport(), tasks)
        assert report.cost_per_task_point == float("inf")


class TestConfusionCountsEdgeCases:
    """NaN/zero-division safety on empty and one-class inputs."""

    def test_empty_counts_all_metrics_finite(self):
        counts = ConfusionCounts(0, 0, 0, 0)
        assert counts.total == 0
        assert counts.accuracy == 0.0
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0  # p = r = 1 by convention

    def test_empty_report_predictions(self):
        """No predictions at all (a stalled zero-step run)."""
        tasks = TaskSet(
            [Task(0, "t0", "d", Label.YES), Task(1, "t1", "d", Label.NO)]
        )
        counts = confusion({}, tasks)
        assert counts.total == 0
        assert counts.accuracy == 0.0
        assert counts.f1 == 1.0

    def test_every_task_excluded(self):
        tasks = TaskSet([Task(0, "t0", "d", Label.YES)])
        counts = confusion({0: Label.YES}, tasks, exclude=[0])
        assert counts.total == 0
        assert counts.accuracy == 0.0

    def test_all_gold_no_predicted_no(self):
        """Gold all NO, predictions all NO: recall is the 1.0 convention,
        never a ZeroDivisionError."""
        tasks = TaskSet(
            [Task(i, f"t{i}", "d", Label.NO) for i in range(3)]
        )
        counts = confusion({i: Label.NO for i in range(3)}, tasks)
        assert counts.accuracy == 1.0
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.f1 == 1.0

    def test_all_gold_no_predicted_yes(self):
        """Gold all NO, predictions all YES: precision 0, recall 1, f1
        collapses without dividing by zero."""
        tasks = TaskSet(
            [Task(i, f"t{i}", "d", Label.NO) for i in range(3)]
        )
        counts = confusion({i: Label.YES for i in range(3)}, tasks)
        assert counts.accuracy == 0.0
        assert counts.precision == 0.0
        assert counts.recall == 1.0
        assert counts.f1 == 0.0

    def test_all_gold_yes_predicted_no(self):
        """Gold all YES, predictions all NO: recall 0, precision 1."""
        tasks = TaskSet(
            [Task(i, f"t{i}", "d", Label.YES) for i in range(3)]
        )
        counts = confusion({i: Label.NO for i in range(3)}, tasks)
        assert counts.accuracy == 0.0
        assert counts.precision == 1.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0
