"""Unit tests for the EXPERIMENTS.md report builder."""

import pathlib

from repro.experiments.report import EXPERIMENTS, ReportBuilder, main


class TestReportBuilder:
    def test_includes_recorded_tables(self, tmp_path):
        (tmp_path / "table4_datasets.txt").write_text(
            "Table 4: Dataset statistics\nYahooQA 110\n"
        )
        builder = ReportBuilder(tmp_path)
        report = builder.build()
        assert "YahooQA 110" in report
        assert "## Table 4" in report

    def test_missing_results_flagged(self, tmp_path):
        builder = ReportBuilder(tmp_path)
        report = builder.build()
        assert "no recorded result" in report

    def test_every_experiment_sectioned(self, tmp_path):
        report = ReportBuilder(tmp_path).build()
        for title in EXPERIMENTS:
            assert f"## {title}" in report

    def test_main_writes_file(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig9_itemcompare.txt").write_text("iCrowd wins\n")
        out = main(
            results_dir=str(results),
            output=str(tmp_path / "EXPERIMENTS.md"),
        )
        assert pathlib.Path(out).exists()
        assert "iCrowd wins" in pathlib.Path(out).read_text()

    def test_paper_claims_present(self, tmp_path):
        report = ReportBuilder(tmp_path).build()
        assert "10-20%" in report  # the headline claim
        assert "sub-linear" in report.lower()
