"""Unit tests for the experiment setup and runner plumbing."""

import pytest

from repro.experiments.runner import build_policy
from repro.experiments.setups import make_setup


@pytest.fixture(scope="module")
def setup():
    return make_setup("itemcompare", seed=3, scale=0.1, num_workers=12)


class TestMakeSetup:
    def test_cached_identity(self):
        a = make_setup("itemcompare", seed=3, scale=0.1, num_workers=12)
        b = make_setup("itemcompare", seed=3, scale=0.1, num_workers=12)
        assert a is b

    def test_yahooqa_setup(self):
        setup = make_setup("yahooqa", seed=5)
        assert setup.tasks.domains()[0] == "FIFA"
        assert len(setup.profiles) == 25

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="dataset"):
            make_setup("imagenet")

    def test_qualification_within_budget(self, setup):
        budget = setup.config.qualification.num_qualification
        assert 0 < len(setup.qualification_tasks) <= budget

    def test_fresh_pools_are_independent(self, setup):
        pool_a = setup.fresh_pool("a")
        pool_b = setup.fresh_pool("b")
        assert pool_a is not pool_b
        assert len(pool_a) == len(pool_b) == len(setup.profiles)

    def test_yahooqa_ignores_scaling(self):
        scaled = make_setup("yahooqa", seed=1, scale=0.5)
        assert len(scaled.tasks) == 110


class TestBuildPolicy:
    @pytest.mark.parametrize(
        "name",
        ["RandomMV", "RandomEM", "AvgAccPV", "QF-Only", "BestEffort",
         "iCrowd"],
    )
    def test_builds_each_approach(self, setup, name):
        policy = build_policy(name, setup)
        assert hasattr(policy, "on_worker_request")
        assert hasattr(policy, "predictions")

    def test_k_override(self, setup):
        policy = build_policy("iCrowd", setup, k=5)
        assert policy.config.assigner.k == 5

    def test_shared_estimator_reused(self, setup):
        policy = build_policy("iCrowd", setup)
        assert policy.estimator is setup.estimator

    def test_alpha_change_rebuilds_estimator(self, setup):
        variant = setup.with_config(setup.config.with_alpha(9.0))
        policy = build_policy("iCrowd", variant)
        assert policy.estimator is not setup.estimator
