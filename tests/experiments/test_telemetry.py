"""End-to-end telemetry run: span table, counters, combined trace."""

import json

import pytest

from repro.experiments.telemetry import run_telemetry
from repro.platform.events import EventLog


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    trace = tmp_path_factory.mktemp("telemetry") / "trace.jsonl"
    return run_telemetry(
        dataset="itemcompare", seed=7, scale=0.06, trace_path=trace
    )


class TestTelemetryRun:
    def test_run_finishes_and_snapshots(self, result):
        assert result.report.finished
        assert result.snapshot["repro_platform_steps_total"] > 0
        assert result.report.metrics == result.snapshot

    def test_span_table_lists_platform_and_assigner_spans(self, result):
        names = [name for name, *_ in result.span_rows]
        assert "platform.run" in names
        assert "assigner.scheme" in names
        table = result.format_table()
        assert "platform.run" in table
        assert "count" in table and "mean (s)" in table
        assert "repro_platform_steps_total" in table

    def test_trace_mixes_spans_and_events(self, result):
        lines = result.trace_path.read_text().splitlines()
        types = {json.loads(line)["type"] for line in lines}
        assert "span" in types
        assert "answer" in types

    def test_trace_parses_as_event_log(self, result):
        log = EventLog.from_jsonl(result.trace_path)
        assert len(log.answers()) == len(result.report.events.answers())
        assert len(log) == len(result.report.events)

    def test_shared_estimator_recorder_restored(self, result):
        from repro.experiments.setups import make_setup

        setup = make_setup("itemcompare", seed=7, scale=0.06)
        assert setup.estimator.recorder.enabled is False

    def test_slo_report_evaluated_and_rendered(self, result):
        assert result.slo_report is not None
        names = {r.slo.name for r in result.slo_report.results}
        assert "scheme_build_p99" in names
        assert "SLO" in result.format_table()

    def test_as_dict_is_json_safe_and_complete(self, result):
        payload = result.as_dict()
        encoded = json.dumps(payload)  # must not raise / emit NaN
        assert "NaN" not in encoded
        assert payload["dataset"] == "itemcompare"
        assert payload["finished"] is True
        assert payload["slo"] is not None
        assert any(
            row["name"] == "platform.run" for row in payload["spans"]
        )
        assert payload["trace_path"] == str(result.trace_path)

    def test_trace_feeds_the_flight_recorder(self, result):
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder.from_jsonl(result.trace_path)
        assert recorder.timelines()
        completed = [
            t for t in recorder.timelines().values() if t.is_complete
        ]
        assert completed
