"""Integration: checkpoint a live HTTP-served job and resume it.

The full Appendix A production story: the iCrowd server crashes
mid-job, a new process restores the checkpoint, and workers keep
going — nobody re-answers, nothing is lost, the job finishes.
"""

import http.client
import json

from repro.core import ICrowd, ICrowdConfig
from repro.core.config import GraphConfig, QualificationConfig
from repro.core.persistence import load_checkpoint, save_checkpoint
from repro.datasets import make_itemcompare
from repro.platform.server import ICrowdHTTPServer
from repro.workers import WorkerPool, generate_profiles


def call(address, method, path, payload=None):
    conn = http.client.HTTPConnection(*address, timeout=5)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    return response.status, (json.loads(raw) if raw else None)


def drive(server, pool, tasks, max_steps):
    """Run the worker loop against a server for up to max_steps."""
    for _ in range(max_steps):
        pool.tick()
        worker = pool.sample_requester()
        if worker is None:
            continue
        status, body = call(
            server.address, "GET", f"/request?worker={worker}"
        )
        if status != 200:
            continue
        label = pool.worker(worker).answer(tasks[body["task_id"]])
        call(
            server.address,
            "POST",
            "/submit",
            {
                "worker": worker,
                "task_id": body["task_id"],
                "label": int(label),
                "is_test": body["is_test"],
            },
        )
        pool.note_submission(worker)


def test_restart_served_job_from_checkpoint(tmp_path):
    tasks = make_itemcompare(seed=23, tasks_per_domain=5)
    config = ICrowdConfig(
        qualification=QualificationConfig(
            num_qualification=4, qualification_threshold=0.0
        ),
        graph=GraphConfig(measure="jaccard", threshold=0.3),
        seed=23,
    )
    icrowd = ICrowd(tasks, config)
    pool = WorkerPool(
        generate_profiles(tasks.domains(), 8, seed=23), seed=23
    )

    # phase 1: serve part of the job, then "crash"
    with ICrowdHTTPServer(tasks, icrowd) as server:
        drive(server, pool, tasks, max_steps=60)
        checkpoint_path = tmp_path / "job.json"
        save_checkpoint(icrowd, checkpoint_path)
        progress_before = len(icrowd.completed_tasks())

    # phase 2: a new process restores and finishes the job
    restored = load_checkpoint(
        tasks, config, checkpoint_path, graph=icrowd.graph
    )
    assert len(restored.completed_tasks()) == progress_before
    with ICrowdHTTPServer(tasks, restored) as server:
        drive(server, pool, tasks, max_steps=3000)
        status, body = call(server.address, "GET", "/status")
    assert body["finished"] is True

    # quality sanity: the finished job predicts most tasks correctly
    exclude = set(restored.qualification_tasks)
    predictions = restored.predictions()
    considered = [t for t in tasks if t.task_id not in exclude]
    accuracy = sum(
        1 for t in considered if predictions[t.task_id] == t.truth
    ) / len(considered)
    assert accuracy > 0.55
