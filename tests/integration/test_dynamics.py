"""Integration tests for dynamic worker behaviour and config variants.

Section 2.1 stresses that the worker set is *dynamic* — workers arrive,
leave, and return.  These tests run the full pipeline under churn and
staggered arrivals, and exercise the weighted-consensus configuration
end-to-end.
"""

import pytest

from repro.core import ICrowd
from repro.experiments.runner import build_policy
from repro.experiments.setups import make_setup
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool


@pytest.fixture(scope="module")
def setup():
    return make_setup("itemcompare", seed=21, scale=0.12, num_workers=14)


def run_with_pool(setup, pool, approach="iCrowd"):
    policy = build_policy(approach, setup)
    return SimulatedPlatform(setup.tasks, pool, policy).run(), policy


class TestChurn:
    def test_completes_under_churn(self, setup):
        pool = WorkerPool(
            list(setup.profiles), seed=5, churn=0.2
        )
        report, _ = run_with_pool(setup, pool)
        assert report.finished
        assert not report.stalled

    def test_completes_with_staggered_arrivals(self, setup):
        pool = WorkerPool(
            list(setup.profiles), seed=5, arrival_spread=100
        )
        report, _ = run_with_pool(setup, pool)
        assert report.finished

    def test_churn_and_arrivals_combined(self, setup):
        pool = WorkerPool(
            list(setup.profiles), seed=5, arrival_spread=50, churn=0.15
        )
        report, _ = run_with_pool(setup, pool)
        assert report.finished
        # quality must not collapse under dynamics
        exclude = set(setup.qualification_tasks)
        assert report.accuracy(setup.tasks, exclude=exclude) > 0.5


class TestWeightedConsensusEndToEnd:
    def test_weighted_run_completes(self, setup):
        variant = setup.with_config(
            setup.config.with_consensus("weighted")
        )
        policy = build_policy("iCrowd", variant)
        assert isinstance(policy, ICrowd)
        pool = variant.fresh_pool("weighted-e2e")
        report = SimulatedPlatform(variant.tasks, pool, policy).run()
        assert report.finished
        exclude = set(variant.qualification_tasks)
        assert report.accuracy(variant.tasks, exclude=exclude) > 0.5


class TestRejectionFlow:
    def test_rejected_workers_leave_platform(self, setup):
        """Spammers failing warm-up must be removed and never served
        again; the run still completes with the remaining workers."""
        policy = build_policy("iCrowd", setup)
        pool = setup.fresh_pool("rejection-e2e")
        platform = SimulatedPlatform(setup.tasks, pool, policy)
        report = platform.run()
        assert report.finished
        for worker_id in report.rejected_workers:
            # a rejected worker submitted only qualification answers
            for event in report.events.answers():
                if event.worker_id == worker_id:
                    assert event.task_id in set(
                        setup.qualification_tasks
                    )
