"""Integration tests: every policy end-to-end on a small workload."""

import pytest

from repro.experiments.runner import APPROACHES, build_policy, run_approach
from repro.experiments.setups import make_setup


@pytest.fixture(scope="module")
def setup():
    return make_setup("itemcompare", seed=11, scale=0.12, num_workers=14)


class TestAllApproachesComplete:
    @pytest.mark.parametrize("approach", APPROACHES)
    def test_runs_to_completion(self, setup, approach):
        result = run_approach(approach, setup, run_tag=f"e2e-{approach}")
        assert result.finished, f"{approach} did not finish"
        assert 0.0 <= result.overall_accuracy <= 1.0
        assert set(result.domain_accuracy) == set(setup.tasks.domains())

    def test_build_policy_rejects_unknown(self, setup):
        with pytest.raises(ValueError, match="unknown approach"):
            build_policy("Oracle", setup)


class TestICrowdQuality:
    def test_icrowd_beats_random_mv(self, setup):
        """The headline claim at small scale: adaptive assignment helps.

        A single seed comparison is noisy, so assert a margin of -0.05
        (iCrowd must at least match RandomMV) — the full effect is
        measured by the Figure 9 bench.
        """
        icrowd = run_approach("iCrowd", setup, run_tag="quality-icrowd")
        random_mv = run_approach("RandomMV", setup, run_tag="quality-mv")
        assert (
            icrowd.overall_accuracy >= random_mv.overall_accuracy - 0.05
        )

    def test_icrowd_prediction_coverage(self, setup):
        result = run_approach("iCrowd", setup, run_tag="coverage")
        predictions = result.report.predictions
        assert set(predictions) == set(setup.tasks.ids())

    def test_votes_respect_k(self, setup):
        result = run_approach("iCrowd", setup, run_tag="votes-k")
        policy_votes = {}
        for event in result.report.events.answers():
            if event.is_test:
                continue
            if event.task_id in set(setup.qualification_tasks):
                continue
            policy_votes.setdefault(event.task_id, set()).add(
                event.worker_id
            )
        k = setup.config.assigner.k
        for task_id, workers in policy_votes.items():
            assert len(workers) == k, (
                f"task {task_id} got {len(workers)} votes, expected {k}"
            )


class TestDeterminism:
    def test_same_seed_same_outcome(self, setup):
        a = run_approach("iCrowd", setup, run_tag="det")
        b = run_approach("iCrowd", setup, run_tag="det")
        assert a.overall_accuracy == b.overall_accuracy
        assert a.steps == b.steps

    def test_different_noise_different_trace(self, setup):
        a = run_approach("RandomMV", setup, run_tag="noise-a")
        b = run_approach("RandomMV", setup, run_tag="noise-b")
        answers_a = [
            (e.task_id, e.worker_id, e.label)
            for e in a.report.events.answers()
        ]
        answers_b = [
            (e.task_id, e.worker_id, e.label)
            for e in b.report.events.answers()
        ]
        assert answers_a != answers_b
