"""Integration test: the multi-choice voting layer end to end.

Simulates a small multi-choice crowdsourcing job by hand (the binary
``ICrowd`` framework is label-agnostic above the voting layer, so this
exercises the multichoice module against the estimator directly).
"""

import numpy as np

from repro.core.config import EstimatorConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph
from repro.core.multichoice import (
    MultiVoteState,
    multichoice_observed_accuracy,
    plurality_vote,
)
from repro.utils.rng import spawn_rng

CHOICES = ("rock", "paper", "scissors")


def test_multichoice_job_with_graph_estimation():
    """Workers vote on 3-choice tasks in two topical clusters; the
    estimator built from multichoice observed accuracies must still
    identify each worker's strong cluster."""
    rng = spawn_rng(0, "multichoice-flow")
    # two 5-cliques of tasks
    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j, 1.0))
    graph = SimilarityGraph.from_edges(10, edges)
    estimator = AccuracyEstimator(graph, EstimatorConfig())

    truth = {t: CHOICES[int(rng.integers(0, 3))] for t in range(10)}
    # worker A is good on cluster 1 (tasks 0-4), bad on cluster 2
    worker_accuracy = {"A": (0.95, 0.2), "B": (0.2, 0.95), "C": (0.7, 0.7)}

    def answer(worker, task):
        strong, weak = worker_accuracy[worker]
        accuracy = strong if task < 5 else weak
        if rng.random() < accuracy:
            return truth[task]
        wrong = [c for c in CHOICES if c != truth[task]]
        return wrong[int(rng.integers(0, 2))]

    votes = []
    states = {}
    for task in range(10):
        state = MultiVoteState(task_id=task, k=3, choices=CHOICES)
        for worker in ("A", "B", "C"):
            choice = answer(worker, task)
            state.add(worker, choice)
            votes.append((task, worker, choice))
        states[task] = state

    results = plurality_vote(votes, CHOICES)
    assert set(results) == set(range(10))

    # observed accuracies for worker A via the generalised Eq. (5)
    observed_a = {}
    for task, state in states.items():
        consensus = state.consensus()
        worker_choice = next(c for w, c in state.answers if w == "A")
        vote_list = [
            (c, 0.7)  # flat prior estimates for co-voters
            for _, c in state.answers
        ]
        observed_a[task] = multichoice_observed_accuracy(
            worker_choice, consensus, vote_list, num_choices=3
        )
    estimate = estimator.estimate(observed_a)
    # A must be rated higher on her strong cluster
    assert np.mean(estimate[:5]) > np.mean(estimate[5:])
