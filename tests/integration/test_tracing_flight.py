"""End-to-end causal tracing and flight-recorder acceptance tests.

Two rounds, per the observability acceptance criteria:

- an HTTP round where a traced :class:`ICrowdClient` talks to a traced
  :class:`ICrowdHTTPServer` — server-side spans must carry the client's
  ``trace_id`` (one causal trace across the wire), and the server's
  flight data must reconstruct lifecycles including an expired-lease
  requeue forced by a tiny lease timeout;
- a chaos round through :func:`run_telemetry` with fault injection —
  every completed task gets a complete lifecycle and the Chrome trace
  export passes the schema check.
"""

import json

import pytest

from repro.baselines import RandomMV
from repro.core.types import Label, Task, TaskSet
from repro.obs.flight import FlightRecorder, validate_chrome_trace
from repro.obs.ids import TraceIdSource
from repro.obs.metrics import MetricsRegistry
from repro.platform import ICrowdClient
from repro.platform.server import ICrowdHTTPServer


def _spans(path):
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                record = json.loads(line)
                if record.get("type") == "span":
                    records.append(record)
    return records


class TestHTTPTracePropagation:
    @pytest.fixture
    def traced_round(self, tmp_path):
        """Run a full job over HTTP with both sides traced.

        ``lease_timeout=3`` with an abandoning first worker forces at
        least one lease to expire and requeue mid-round.
        """
        tasks = TaskSet(
            [
                Task(i, f"microtask {i} shared tokens", "d",
                     Label.YES if i % 2 == 0 else Label.NO)
                for i in range(6)
            ]
        )
        policy = RandomMV(tasks, k=2, seed=0)
        server_trace = tmp_path / "server_trace.jsonl"
        client_trace = tmp_path / "client_trace.jsonl"
        server_registry = MetricsRegistry(
            trace_path=server_trace, ids=TraceIdSource(seed=1)
        )
        client_registry = MetricsRegistry(
            trace_path=client_trace, ids=TraceIdSource(seed=2)
        )
        with ICrowdHTTPServer(
            tasks, policy, lease_timeout=3, recorder=server_registry
        ) as server:
            client = ICrowdClient(server.address, recorder=client_registry)
            # w1 takes a lease and walks away: after three more
            # interactions its lease expires and the slot requeues
            abandoned = client.request_task("w1")
            assert abandoned is not None
            for _ in range(200):
                status = client.status()
                if status["finished"]:
                    break
                for worker in ("w2", "w3"):
                    task = client.request_task(worker)
                    if task is not None:
                        client.submit(worker, task["task_id"], 1)
            events = server.events
        server_registry.close()
        client_registry.close()
        # one file, two record families: the server's spans, then the
        # server's flight data from the same round
        events.to_jsonl(server_trace, append=True)
        return {
            "abandoned_task": abandoned["task_id"],
            "server_trace": server_trace,
            "client_trace": client_trace,
        }

    def test_server_spans_join_client_traces(self, traced_round):
        client_traces = {
            record["trace_id"]
            for record in _spans(traced_round["client_trace"])
        }
        server_spans = _spans(traced_round["server_trace"])
        handler_spans = [
            record
            for record in server_spans
            if record["name"] in ("server.request", "server.submit")
        ]
        assert client_traces and handler_spans
        for record in handler_spans:
            # the handler joined the client's trace and parented under
            # the client span carried by the traceparent header
            assert record["trace_id"] in client_traces
            assert record["parent_id"] is not None

    def test_inner_spans_stay_inside_the_remote_trace(self, traced_round):
        spans = _spans(traced_round["server_trace"])
        client_traces = {
            record["trace_id"]
            for record in _spans(traced_round["client_trace"])
        }
        inner = [
            record
            for record in spans
            if record["name"] in ("server.lease_issue", "server.aggregate")
        ]
        assert inner
        for record in inner:
            assert record["trace_id"] in client_traces

    def test_flight_recorder_reconstructs_requeue(self, traced_round):
        recorder = FlightRecorder.from_jsonl(traced_round["server_trace"])
        timelines = recorder.timelines()
        # the abandoned lease expired and the task still completed
        timeline = timelines[traced_round["abandoned_task"]]
        assert timeline.expiries >= 1
        assert timeline.is_complete
        phases = timeline.phases()
        assert phases.index("expired") < len(phases) - 1
        assert phases[-1] == "aggregated"
        # every task in this round completes (k=2, cooperative workers)
        assert recorder.incomplete_tasks() == []
        assert len(timelines) == 6

    def test_chrome_export_of_the_round_validates(
        self, traced_round, tmp_path
    ):
        recorder = FlightRecorder.from_jsonl(traced_round["server_trace"])
        trace = recorder.chrome_trace()
        assert validate_chrome_trace(trace) == []
        out = recorder.write_chrome(tmp_path / "round.json")
        assert validate_chrome_trace(json.loads(out.read_text())) == []


class TestFaultyRoundFlightRecorder:
    @pytest.fixture(scope="class")
    def chaos_result(self, tmp_path_factory):
        from repro.experiments.telemetry import run_telemetry

        trace = tmp_path_factory.mktemp("chaos") / "trace.jsonl"
        result = run_telemetry(
            dataset="itemcompare",
            seed=13,
            scale=0.08,
            trace_path=trace,
            faults_rate=0.2,
        )
        return result, FlightRecorder.from_jsonl(trace)

    def test_completed_tasks_have_complete_lifecycles(self, chaos_result):
        result, recorder = chaos_result
        timelines = recorder.timelines()
        completed = {
            timeline.task_id
            for timeline in timelines.values()
            if "aggregated" in timeline.phases()
        }
        assert completed
        for task_id in completed:
            assert timelines[task_id].is_complete, task_id
        # incomplete lifecycles are only ever non-aggregating tasks
        # (qualification tasks never reach consensus)
        assert set(recorder.incomplete_tasks()).isdisjoint(completed)

    def test_chaos_round_recorded_expiries(self, chaos_result):
        result, recorder = chaos_result
        expiries = sum(
            timeline.expiries
            for timeline in recorder.timelines().values()
        )
        assert expiries >= 1

    def test_chrome_trace_validates(self, chaos_result):
        _, recorder = chaos_result
        assert validate_chrome_trace(recorder.chrome_trace()) == []

    def test_slo_report_attached(self, chaos_result):
        result, _ = chaos_result
        assert result.slo_report is not None
        assert result.slo_report.results
