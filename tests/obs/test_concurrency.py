"""Registry thread-safety under the threaded HTTP server.

``ThreadingHTTPServer`` handles every request on its own thread, so the
server's registry is mutated concurrently: counters increment, spans
nest, and ``GET /metrics`` renders mid-flight.  These tests hammer that
surface and assert the two invariants the locks exist for:

- **no lost updates** — N threads x K increments ends at exactly N*K;
- **no torn exposition** — every concurrent render is internally
  consistent (cumulative buckets monotone, ``+Inf`` bucket == count).
"""

import http.client
import threading

from repro.baselines import RandomMV
from repro.core.types import Label, Task, TaskSet
from repro.obs.exposition import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.platform.server import ICrowdHTTPServer

THREADS = 8
INCREMENTS = 2000


def _parse_samples(text):
    samples = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


def _series_key(family, labels):
    """(family, labels-without-le) — one cumulative series per label set."""
    kept = [
        part
        for part in labels.split(",")
        if part and not part.startswith("le=")
    ]
    return family, ",".join(sorted(kept))


def _assert_consistent_histograms(samples):
    """Cumulative buckets must be monotone and end at the count."""
    by_series = {}
    for name, value in samples.items():
        if "_bucket{" in name:
            family, _, rest = name.partition("_bucket{")
            by_series.setdefault(
                _series_key(family, rest.rstrip("}")), []
            ).append(value)
    for (family, labels), values in by_series.items():
        assert values == sorted(values), (
            f"non-monotone buckets: {family}{{{labels}}}"
        )
        count_name = (
            f"{family}_count{{{labels}}}" if labels else f"{family}_count"
        )
        # label order in exposition may differ from our sorted key
        count = next(
            (
                v
                for k, v in samples.items()
                if k.startswith(f"{family}_count")
                and _series_key(family, k.partition("{")[2].rstrip("}"))[1]
                == labels
            ),
            samples.get(count_name),
        )
        assert count is not None, f"missing count for {family}{{{labels}}}"
        assert values[-1] == count, (
            f"torn series {family}{{{labels}}}: +Inf {values[-1]} != count"
        )


class TestHammer:
    def test_no_lost_updates_and_no_torn_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", "Hammered.")
        hist = registry.histogram(
            "hammer_seconds", "Hammered latencies.", buckets=(0.5, 1.0)
        )
        start = threading.Barrier(THREADS + 1)
        renders = []

        def writer(index):
            start.wait()
            for i in range(INCREMENTS):
                counter.inc()
                hist.observe((index + i) % 3 * 0.4)
                with registry.span("hammer.outer"):
                    with registry.span("hammer.inner"):
                        pass

        def reader():
            start.wait()
            for _ in range(50):
                renders.append(render_prometheus(registry))

        threads = [
            threading.Thread(target=writer, args=(index,))
            for index in range(THREADS)
        ]
        threads.append(threading.Thread(target=reader))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert counter.value == THREADS * INCREMENTS
        assert hist.count == THREADS * INCREMENTS
        assert sum(hist.bucket_counts) == hist.count
        spans = dict(
            (name, count)
            for name, count, *_ in registry.span_summary()
        )
        assert spans["hammer.outer"] == THREADS * INCREMENTS
        assert spans["hammer.inner"] == THREADS * INCREMENTS
        for rendered in renders:
            _assert_consistent_histograms(_parse_samples(rendered))
        # the final render reflects every update
        final = _parse_samples(render_prometheus(registry))
        assert final["hammer_total"] == THREADS * INCREMENTS


class TestThreadedServerScrape:
    def test_concurrent_scrapes_during_traffic_are_never_torn(self):
        tasks = TaskSet(
            [
                Task(i, f"microtask {i} shared tokens", "d",
                     Label.YES if i % 2 == 0 else Label.NO)
                for i in range(6)
            ]
        )
        policy = RandomMV(tasks, k=2, seed=0)
        registry = MetricsRegistry()
        with ICrowdHTTPServer(tasks, policy, recorder=registry) as server:
            host, port = server.address
            stop = threading.Event()
            scrapes = []

            def scrape_loop():
                while not stop.is_set():
                    conn = http.client.HTTPConnection(host, port, timeout=5)
                    try:
                        conn.request("GET", "/metrics")
                        response = conn.getresponse()
                        body = response.read().decode("utf-8")
                        assert response.status == 200
                        scrapes.append(body)
                    finally:
                        conn.close()

            scraper = threading.Thread(target=scrape_loop)
            scraper.start()
            try:
                for worker in ("w1", "w2", "w3"):
                    for _ in range(12):
                        conn = http.client.HTTPConnection(
                            host, port, timeout=5
                        )
                        try:
                            conn.request(
                                "GET", f"/request?worker={worker}"
                            )
                            conn.getresponse().read()
                        finally:
                            conn.close()
            finally:
                stop.set()
                scraper.join(timeout=10)
        assert scrapes
        for body in scrapes:
            _assert_consistent_histograms(_parse_samples(body))
