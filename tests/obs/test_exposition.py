"""Prometheus text-format rendering and 0.0.4 conformance audit."""

import math
import re
from pathlib import Path

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry

FIXTURE = Path(__file__).parent / "fixtures" / "exposition_reference.txt"


def test_content_type_is_the_text_format():
    assert "version=0.0.4" in CONTENT_TYPE


def test_counter_and_gauge_rendering():
    reg = MetricsRegistry()
    reg.counter("jobs_total", "Jobs processed.").inc(3)
    reg.gauge("queue_depth").set(1.5)
    text = render_prometheus(reg)
    assert "# HELP jobs_total Jobs processed." in text
    assert "# TYPE jobs_total counter" in text
    assert "jobs_total 3" in text
    assert "# TYPE queue_depth gauge" in text
    assert "queue_depth 1.5" in text
    assert text.endswith("\n")


def test_labelled_families_share_one_header():
    reg = MetricsRegistry()
    reg.counter("hits_total", "Hits.", kind="a").inc()
    reg.counter("hits_total", "Hits.", kind="b").inc()
    text = render_prometheus(reg)
    assert text.count("# TYPE hits_total counter") == 1
    assert 'hits_total{kind="a"} 1' in text
    assert 'hits_total{kind="b"} 1' in text


def test_histogram_buckets_are_cumulative_with_inf():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    text = render_prometheus(reg)
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_sum 5.55" in text
    assert "lat_seconds_count 3" in text


def test_label_values_escaped():
    reg = MetricsRegistry()
    reg.counter("odd_total", path='a"b\\c\nd').inc()
    text = render_prometheus(reg)
    assert r'odd_total{path="a\"b\\c\nd"} 1' in text


def _conformance_registry():
    """Every rendering hazard in one registry: escaping in help text and
    label values, non-finite sample values, shared headers for labelled
    families, cumulative buckets, and an empty histogram."""
    reg = MetricsRegistry()
    reg.counter("conf_jobs_total", "Jobs processed.").inc(3)
    reg.counter("conf_hits_total", "Hits per route.", route="/a").inc(2)
    reg.counter("conf_hits_total", "Hits per route.", route="/b").inc()
    reg.gauge("conf_queue_depth", "Items waiting.").set(1.5)
    ratios = "Division hazards."
    reg.gauge("conf_ratio", ratios, which="nan").set(float("nan"))
    reg.gauge("conf_ratio", ratios, which="pinf").set(math.inf)
    reg.gauge("conf_ratio", ratios, which="ninf").set(-math.inf)
    reg.counter(
        "conf_odd_total",
        "Help with \\ backslash\nand newline.",
        path='a"b\\c\nd',
    ).inc()
    hist = reg.histogram("conf_lat_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    reg.histogram("conf_empty_seconds", "Never observed.", buckets=(0.5,))
    return reg


def test_reference_fixture_matches_byte_for_byte():
    """Conformance audit: the exposition of the hazard registry must be
    byte-identical to the reviewed reference fixture.  Any formatting
    drift (escaping, value spelling, family grouping) fails here first.
    """
    assert render_prometheus(_conformance_registry()) == FIXTURE.read_text(
        encoding="utf-8"
    )


# Text format 0.0.4 line grammar (comment lines aside):
# metric_name ['{' labels '}'] ' ' value — no leading whitespace, no
# tabs, single space separator, value a float or NaN/+Inf/-Inf.
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r'\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\[\\"n])*"' \
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\[\\"n])*")*\}'
_VALUE = r"(?:[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|NaN|\+Inf|-Inf)"
_SAMPLE_RE = re.compile(rf"^{_NAME}(?:{_LABELS})? {_VALUE}$")
_HELP_RE = re.compile(rf"^# HELP {_NAME} (?:[^\\\n]|\\[\\n])*$")
_TYPE_RE = re.compile(rf"^# TYPE {_NAME} (?:counter|gauge|histogram)$")


def test_every_line_matches_the_text_format_grammar():
    text = render_prometheus(_conformance_registry())
    assert text.endswith("\n")
    seen_types = set()
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), line
        elif line.startswith("# TYPE"):
            match = _TYPE_RE.match(line)
            assert match, line
            name = line.split(" ")[2]
            # one TYPE header per family, TYPE precedes its samples
            assert name not in seen_types, line
            seen_types.add(name)
        else:
            assert _SAMPLE_RE.match(line), line
            family = re.match(_NAME, line).group(0)
            base = re.sub(r"_(bucket|sum|count)$", "", family)
            assert base in seen_types or family in seen_types, line


def test_histogram_invariants_in_reference_output():
    text = FIXTURE.read_text(encoding="utf-8")
    # cumulative buckets end at the count, +Inf bucket always present
    assert 'conf_lat_seconds_bucket{le="+Inf"} 3' in text
    assert "conf_lat_seconds_count 3" in text
    assert 'conf_empty_seconds_bucket{le="+Inf"} 0' in text
    assert "conf_empty_seconds_count 0" in text
