"""Prometheus text-format rendering."""

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry


def test_content_type_is_the_text_format():
    assert "version=0.0.4" in CONTENT_TYPE


def test_counter_and_gauge_rendering():
    reg = MetricsRegistry()
    reg.counter("jobs_total", "Jobs processed.").inc(3)
    reg.gauge("queue_depth").set(1.5)
    text = render_prometheus(reg)
    assert "# HELP jobs_total Jobs processed." in text
    assert "# TYPE jobs_total counter" in text
    assert "jobs_total 3" in text
    assert "# TYPE queue_depth gauge" in text
    assert "queue_depth 1.5" in text
    assert text.endswith("\n")


def test_labelled_families_share_one_header():
    reg = MetricsRegistry()
    reg.counter("hits_total", "Hits.", kind="a").inc()
    reg.counter("hits_total", "Hits.", kind="b").inc()
    text = render_prometheus(reg)
    assert text.count("# TYPE hits_total counter") == 1
    assert 'hits_total{kind="a"} 1' in text
    assert 'hits_total{kind="b"} 1' in text


def test_histogram_buckets_are_cumulative_with_inf():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        h.observe(value)
    text = render_prometheus(reg)
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_sum 5.55" in text
    assert "lat_seconds_count 3" in text


def test_label_values_escaped():
    reg = MetricsRegistry()
    reg.counter("odd_total", path='a"b\\c\nd').inc()
    text = render_prometheus(reg)
    assert r'odd_total{path="a\"b\\c\nd"} 1' in text
