"""Flight recorder: lifecycle joins and the Chrome trace export."""

import json

from repro.obs.flight import (
    FlightRecorder,
    TaskTimeline,
    TimelineEntry,
    validate_chrome_trace,
)


def _span(name, trace_id="ab" * 16, start=1.0, elapsed=0.5, **extra):
    return {
        "type": "span",
        "name": name,
        "trace_id": trace_id,
        "span_id": "cd" * 8,
        "parent_id": None,
        "start": start,
        "elapsed": elapsed,
        **extra,
    }


def _records_with_requeue():
    """One task that survives an expired lease, one that never finishes."""
    return [
        _span("client.request"),
        _span("server.request", start=1.1, elapsed=0.2),
        {"type": "assign", "step": 3, "worker_id": "w1", "task_id": 0,
         "is_test": False},
        # w1's lease dies; the sweep (same step as the re-assign) runs
        # before assignment, so expired must sort before assigned
        {"type": "expire", "step": 9, "worker_id": "w1", "task_id": 0},
        {"type": "assign", "step": 9, "worker_id": "w2", "task_id": 0,
         "is_test": False},
        {"type": "answer", "step": 12, "worker_id": "w2", "task_id": 0,
         "label": 1, "is_test": False},
        {"type": "complete", "step": 12, "task_id": 0, "consensus": 1},
        {"type": "assign", "step": 4, "worker_id": "w3", "task_id": 7,
         "is_test": True},
        # skipped record families must be ignored, not crash the join
        {"type": "request", "step": 1, "worker_id": "w1"},
        {"type": "reject", "step": 2, "worker_id": "w9"},
    ]


class TestLifecycleJoin:
    def test_requeue_timeline_reconstructed_in_order(self):
        recorder = FlightRecorder.from_records(_records_with_requeue())
        timeline = recorder.timelines()[0]
        assert timeline.phases() == [
            "created", "assigned", "expired", "assigned", "submitted",
            "aggregated",
        ]
        assert timeline.is_complete
        assert timeline.expiries == 1
        # created is synthesised at step 0
        assert timeline.entries[0] == TimelineEntry(step=0, phase="created")

    def test_incomplete_task_detected(self):
        recorder = FlightRecorder.from_records(_records_with_requeue())
        assert recorder.incomplete_tasks() == [7]
        assert not recorder.timelines()[7].is_complete

    def test_format_table_and_single_task_view(self):
        recorder = FlightRecorder.from_records(_records_with_requeue())
        table = recorder.format_table()
        assert "2 tasks" in table
        assert "1 complete lifecycles" in table
        assert "1 lease expiries" in table
        line = recorder.format_table(task_id=0)
        assert line.startswith("task     0: created@0")
        assert "expired@9(w1)" in line
        assert recorder.format_table(task_id=99).endswith(
            "no recorded lifecycle"
        )

    def test_as_dict_is_json_safe(self):
        recorder = FlightRecorder.from_records(_records_with_requeue())
        payload = recorder.as_dict()
        json.dumps(payload)  # must not raise
        assert payload["tasks"] == 2
        assert payload["complete"] == 1
        assert payload["timelines"]["0"][0]["phase"] == "created"

    def test_from_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for record in _records_with_requeue():
                handle.write(json.dumps(record) + "\n")
            handle.write("\n")  # blank lines are skipped
        recorder = FlightRecorder.from_jsonl(path)
        assert len(recorder.spans) == 2
        assert recorder.timelines()[0].is_complete


class TestChromeExport:
    def test_export_validates_against_schema(self, tmp_path):
        recorder = FlightRecorder.from_records(_records_with_requeue())
        trace = recorder.chrome_trace()
        assert validate_chrome_trace(trace) == []
        out = recorder.write_chrome(tmp_path / "chrome.json")
        assert validate_chrome_trace(json.loads(out.read_text())) == []

    def test_spans_and_lifecycles_in_separate_process_groups(self):
        trace = FlightRecorder.from_records(
            _records_with_requeue()
        ).chrome_trace()
        events = trace["traceEvents"]
        span_events = [
            e for e in events if e.get("cat") == "span"
        ]
        lifecycle = [e for e in events if e.get("cat") == "lifecycle"]
        assert span_events and all(e["pid"] == 1 for e in span_events)
        assert lifecycle and all(e["pid"] == 2 for e in lifecycle)
        # span clock is wall-clock micros
        assert span_events[0]["ts"] == 1.0 * 1e6
        # lifecycle clock is steps at 1 step = 1000 us
        steps = {e["ts"] for e in lifecycle}
        assert 9 * 1000.0 in steps

    def test_lease_slices_cover_requeue(self):
        trace = FlightRecorder.from_records(
            _records_with_requeue()
        ).chrome_trace()
        leases = [
            e for e in trace["traceEvents"] if e.get("cat") == "lease"
        ]
        outcomes = sorted(e["args"]["outcome"] for e in leases)
        assert outcomes == ["expired", "submitted"]

    def test_validator_rejects_broken_traces(self):
        assert validate_chrome_trace([]) == ["trace must be a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents must be an array"]
        bad = {
            "traceEvents": [
                "not-a-dict",
                {"ph": "X", "pid": 1, "tid": 1, "ts": 0.0},  # no name/dur
                {"name": "x", "ph": "i", "pid": "one", "tid": 1,
                 "ts": 0.0, "s": "z"},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("not an object" in p for p in problems)
        assert any("'name'" in p for p in problems)
        assert any("non-negative 'dur'" in p for p in problems)
        assert any("'pid' must be an integer" in p for p in problems)
        assert any("scope must be g/p/t" in p for p in problems)


class TestTaskTimeline:
    def test_completeness_requires_all_phases(self):
        partial = TaskTimeline(
            1,
            [
                TimelineEntry(step=0, phase="created"),
                TimelineEntry(step=1, phase="assigned", worker_id="w"),
            ],
        )
        assert not partial.is_complete
        assert partial.expiries == 0
