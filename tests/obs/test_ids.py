"""Seeded trace identities and W3C traceparent propagation."""

import threading

import pytest

from repro.obs.ids import (
    TRACEPARENT_HEADER,
    TraceContext,
    TraceIdSource,
    format_traceparent,
    parse_traceparent,
)


class TestTraceContext:
    def test_valid_context(self):
        ctx = TraceContext(trace_id="ab" * 16, span_id="cd" * 8)
        assert ctx.trace_id == "ab" * 16
        assert ctx.span_id == "cd" * 8

    @pytest.mark.parametrize(
        "trace_id,span_id",
        [
            ("short", "cd" * 8),
            ("ab" * 16, "short"),
            ("AB" * 16, "cd" * 8),  # uppercase hex is invalid per W3C
            ("zz" * 16, "cd" * 8),
            ("", ""),
        ],
    )
    def test_invalid_ids_raise(self, trace_id, span_id):
        with pytest.raises(ValueError):
            TraceContext(trace_id=trace_id, span_id=span_id)


class TestTraceparentHeader:
    def test_roundtrip(self):
        ctx = TraceContext(trace_id="1a" * 16, span_id="2b" * 8)
        header = format_traceparent(ctx)
        assert header == f"00-{'1a' * 16}-{'2b' * 8}-01"
        assert parse_traceparent(header) == ctx

    def test_header_name_is_w3c(self):
        assert TRACEPARENT_HEADER == "traceparent"

    @pytest.mark.parametrize(
        "value",
        [
            "",
            "garbage",
            "00-tooshort-2b2b2b2b2b2b2b2b-01",
            "00-" + "1a" * 16 + "-" + "2b" * 8,  # missing flags
            "xx-" + "1a" * 16 + "-" + "2b" * 8 + "-01",  # bad version
            "00-" + "00" * 16 + "-" + "2b" * 8 + "-01",  # all-zero trace
            "00-" + "1a" * 16 + "-" + "00" * 8 + "-01",  # all-zero span
            "00-" + "1A" * 16 + "-" + "2b" * 8 + "-01",  # uppercase
        ],
    )
    def test_malformed_headers_yield_none_not_errors(self, value):
        assert parse_traceparent(value) is None


class TestTraceIdSource:
    def test_id_shapes(self):
        source = TraceIdSource(seed=3)
        trace_id = source.trace_id()
        span_id = source.span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0

    def test_same_seed_same_sequence(self):
        a = [TraceIdSource(seed=9).trace_id() for _ in range(1)]
        first = TraceIdSource(seed=9)
        second = TraceIdSource(seed=9)
        assert [first.trace_id() for _ in range(5)] == [
            second.trace_id() for _ in range(5)
        ]
        assert a[0] == TraceIdSource(seed=9).trace_id()

    def test_different_seed_or_tag_diverges(self):
        base = TraceIdSource(seed=1).trace_id()
        assert TraceIdSource(seed=2).trace_id() != base
        assert TraceIdSource(seed=1, tag="other").trace_id() != base

    def test_sequence_never_repeats_locally(self):
        source = TraceIdSource(seed=0)
        ids = [source.span_id() for _ in range(200)]
        assert len(set(ids)) == len(ids)

    def test_thread_safe_allocation_is_collision_free(self):
        source = TraceIdSource(seed=4)
        out: list[str] = []
        lock = threading.Lock()

        def worker():
            local = [source.span_id() for _ in range(200)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(out)) == len(out) == 1600

    def test_ids_are_valid_context_material(self):
        source = TraceIdSource(seed=11)
        ctx = TraceContext(
            trace_id=source.trace_id(), span_id=source.span_id()
        )
        assert parse_traceparent(format_traceparent(ctx)) == ctx
