"""A recorder threaded through estimator/assigner/ppr/platform records
the expected counters — and its absence leaves reports empty."""

from repro.core.estimator import AccuracyEstimator
from repro.core.framework import ICrowd
from repro.core.ppr import PPRBasis, forward_push
from repro.core.types import Label, Task, TaskSet
from repro.obs.metrics import NULL_RECORDER, MetricsRegistry
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool
from repro.workers.profiles import generate_profiles


def small_tasks(n=8):
    return TaskSet(
        [
            Task(i, f"token{i % 3} shared text {i}", "d",
                 Label.YES if i % 2 == 0 else Label.NO)
            for i in range(n)
        ]
    )


class TestPPRInstrumentation:
    def test_push_records_solves_and_pushes(self, paper_graph):
        reg = MetricsRegistry()
        forward_push(
            paper_graph.normalized, 0, damping=0.5, epsilon=1e-4,
            recorder=reg,
        )
        snap = reg.snapshot()
        assert snap["repro_ppr_push_solves_total"] == 1
        assert snap["repro_ppr_pushes_total"] >= 1
        assert snap["repro_ppr_push_residual_mass_count"] == 1

    def test_basis_records_span_and_rows(self, paper_graph):
        reg = MetricsRegistry()
        PPRBasis.compute(
            paper_graph.normalized, damping=0.5, epsilon=1e-4,
            method="push", recorder=reg,
        )
        snap = reg.snapshot()
        assert snap["repro_ppr_basis_rows_total"] == paper_graph.num_tasks
        assert any(name == "ppr.basis" for name, *_ in reg.span_summary())


class TestEstimatorInstrumentation:
    def test_offline_span_and_estimate_counters(self, paper_graph):
        reg = MetricsRegistry()
        estimator = AccuracyEstimator(paper_graph, recorder=reg)
        estimator.precompute()
        estimator.estimate({0: 1.0})
        estimator.estimate({0: 0.5})  # same support: mass cache hit
        snap = reg.snapshot()
        assert snap["repro_estimator_estimates_total"] == 2
        assert snap["repro_estimator_mass_cache_misses_total"] == 1
        assert snap["repro_estimator_mass_cache_hits_total"] == 1
        assert any(
            name == "estimator.offline" for name, *_ in reg.span_summary()
        )

    def test_basis_cache_hit_and_miss_counters(self, paper_graph, tmp_path):
        reg = MetricsRegistry()
        cold = AccuracyEstimator(
            paper_graph, cache_dir=tmp_path, recorder=reg
        )
        cold.precompute()
        warm = AccuracyEstimator(
            paper_graph, cache_dir=tmp_path, recorder=reg
        )
        warm.precompute()
        snap = reg.snapshot()
        assert snap["repro_estimator_basis_cache_misses_total"] == 1
        assert snap["repro_estimator_basis_cache_hits_total"] == 1


class TestEndToEndPlatformRun:
    def _run(self, recorder):
        tasks = small_tasks()
        policy = ICrowd(
            tasks,
            qualification_tasks=[0, 1],
            recorder=recorder,
        )
        profiles = generate_profiles(["d"], 6, seed=3)
        pool = WorkerPool(list(profiles), seed=3)
        platform = SimulatedPlatform(
            tasks, pool, policy, recorder=recorder, seed=3
        )
        return platform.run(max_steps=2000)

    def test_platform_counters_recorded(self):
        reg = MetricsRegistry()
        report = self._run(reg)
        snap = report.metrics
        assert snap["repro_platform_steps_total"] == report.steps
        assert snap["repro_platform_requests_total"] >= report.steps / 2
        assert snap["repro_lease_issued_total"] >= 1
        assert snap['repro_platform_answers_total{result="accepted"}'] >= 1
        assert snap["repro_assigner_scheme_builds_total"] >= 1
        assert snap["repro_estimator_estimates_total"] >= 1
        assert any(
            name == "platform.run" for name, *_ in reg.span_summary()
        )

    def test_report_metrics_empty_without_recorder(self):
        report = self._run(NULL_RECORDER)
        assert report.metrics == {}

    def test_recorder_does_not_change_outcomes(self):
        with_recorder = self._run(MetricsRegistry())
        without = self._run(NULL_RECORDER)
        assert with_recorder.predictions == without.predictions
        assert with_recorder.steps == without.steps
