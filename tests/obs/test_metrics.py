"""Unit tests for the metrics registry and the null recorder."""

import pytest

from repro.obs.metrics import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    resolve_recorder,
)


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.counter("a_total").inc(2.5)
        assert reg.snapshot()["a_total"] == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a_total").inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_labels_split_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a_total", kind="x").inc()
        reg.counter("a_total", kind="y").inc(2)
        snap = reg.snapshot()
        assert snap['a_total{kind="x"}'] == 1
        assert snap['a_total{kind="y"}'] == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("a_total", x="1", y="2")
        b = reg.counter("a_total", y="2", x="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")


class TestGaugesAndHistograms:
    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert reg.snapshot()["g"] == 4

    def test_histogram_buckets_and_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            h.observe(value)
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        assert h.bucket_counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert h.mean == pytest.approx(18.5)

    def test_histogram_boundary_is_le(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(2.0, 1.0))

    def test_snapshot_histogram_keys(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["h_count"] == 1
        assert snap["h_sum"] == 0.5


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert MetricsRegistry().enabled is True

    def test_all_calls_are_noops(self):
        null = NullRecorder()
        null.counter("a").inc()
        null.gauge("b").set(1)
        null.histogram("c").observe(2)
        with null.span("s"):
            pass
        assert null.snapshot() == {}
        assert null.span_summary() == []
        null.close()

    def test_instruments_are_shared_singletons(self):
        null = NullRecorder()
        assert null.counter("a") is null.counter("b")
        assert null.span("x") is null.span("y")

    def test_resolve_recorder(self):
        assert resolve_recorder(None) is NULL_RECORDER
        reg = MetricsRegistry()
        assert resolve_recorder(reg) is reg
