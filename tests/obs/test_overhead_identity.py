"""Observability must not perturb seeded runs.

The recorder never draws from an RNG stream, so a seeded platform run
(with fault injection active, the RNG-heaviest configuration) must
produce a byte-identical event log with and without a registry
attached.  This is the determinism half of the overhead acceptance
criterion; the timing half lives in ``benchmarks/test_obs_overhead.py``.
"""

from repro.baselines.random_mv import RandomMV
from repro.core.types import Label, Task, TaskSet
from repro.obs.metrics import NULL_RECORDER, MetricsRegistry
from repro.platform.faults import FaultConfig
from repro.platform.platform import SimulatedPlatform
from repro.workers.pool import WorkerPool
from repro.workers.profiles import generate_profiles


def _run_event_log_bytes(recorder, tmp_path, tag):
    tasks = TaskSet(
        [
            Task(i, f"microtask {i} text", "d",
                 Label.YES if i % 2 == 0 else Label.NO)
            for i in range(10)
        ]
    )
    policy = RandomMV(tasks, k=2, seed=5, recorder=recorder)
    pool = WorkerPool(list(generate_profiles(["d"], 8, seed=5)), seed=5)
    platform = SimulatedPlatform(
        tasks,
        pool,
        policy,
        abandonment=0.05,
        assignment_timeout=10,
        faults=FaultConfig.chaos(0.15, seed=5),
        seed=5,
        recorder=recorder,
    )
    report = platform.run(max_steps=3000)
    path = tmp_path / f"{tag}.jsonl"
    report.events.to_jsonl(path)
    return path.read_bytes(), report


def test_event_log_byte_identical_with_and_without_recorder(tmp_path):
    recorded_bytes, recorded_report = _run_event_log_bytes(
        MetricsRegistry(), tmp_path, "on"
    )
    plain_bytes, plain_report = _run_event_log_bytes(
        NULL_RECORDER, tmp_path, "off"
    )
    assert recorded_bytes == plain_bytes
    assert recorded_report.steps == plain_report.steps
    assert recorded_report.predictions == plain_report.predictions
    # and the instrumented run actually recorded something
    assert recorded_report.metrics["repro_platform_steps_total"] > 0
    assert plain_report.metrics == {}


def test_event_log_byte_identical_with_full_tracing_enabled(tmp_path):
    """Span identities come from the keyed TraceIdSource counter, never
    from the experiment RNG — so even a fully traced run (trace file +
    explicit id source) replays the exact same event log."""
    from repro.obs.ids import TraceIdSource

    traced = MetricsRegistry(
        trace_path=tmp_path / "trace.jsonl", ids=TraceIdSource(seed=5)
    )
    try:
        traced_bytes, traced_report = _run_event_log_bytes(
            traced, tmp_path, "traced"
        )
    finally:
        traced.close()
    plain_bytes, _ = _run_event_log_bytes(NULL_RECORDER, tmp_path, "bare")
    assert traced_bytes == plain_bytes
    # the trace file is real: spans were written with identities
    lines = (tmp_path / "trace.jsonl").read_text().splitlines()
    assert lines
    import json

    record = json.loads(lines[0])
    assert record["trace_id"] and record["span_id"]
    assert traced_report.metrics["repro_platform_steps_total"] > 0
