"""Sampling profiler: collapsed stacks, summaries, lifecycle guards."""

import pytest

from repro.obs.profiling import SamplingProfiler, profile_call


def _busy(seconds=0.2):
    """Spin long enough for a 1 ms sampler to land many samples."""
    import time

    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_captures_samples_of_the_hot_function(self):
        with SamplingProfiler(interval=0.001) as prof:
            _busy()
        assert prof.samples > 10
        collapsed = prof.collapsed()
        assert "test_profiling:_busy" in collapsed
        # collapsed-stack lines are "frame;frame count"
        for line in collapsed.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or stack
            assert int(count) >= 1

    def test_top_functions_and_table(self):
        with SamplingProfiler(interval=0.001) as prof:
            _busy()
        top = prof.top_functions(limit=3)
        assert top and top[0][1] >= top[-1][1]
        table = prof.format_table()
        assert "function" in table and "share" in table

    def test_write_collapsed(self, tmp_path):
        with SamplingProfiler(interval=0.001) as prof:
            _busy(0.05)
        out = prof.write_collapsed(tmp_path / "flame.txt")
        assert out.read_text() == prof.collapsed()

    def test_summary_is_json_shaped(self):
        import json

        with SamplingProfiler(interval=0.001) as prof:
            _busy(0.05)
        summary = prof.summary(limit=2)
        json.dumps(summary)
        assert summary["samples"] == prof.samples
        assert len(summary["top"]) <= 2

    def test_profile_call_returns_result_and_profiler(self):
        result, prof = profile_call(lambda: _busy(0.05), interval=0.001)
        assert result > 0
        assert prof.samples > 0

    def test_empty_profile_renders(self):
        prof = SamplingProfiler()
        assert prof.collapsed() == ""
        assert "(no samples collected)" in prof.format_table()

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="interval"):
            SamplingProfiler(interval=0.0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler(interval=0.001)
        prof.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()
