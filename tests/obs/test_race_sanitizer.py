"""End-to-end race sanitizing of the real platform/observability code.

Unlike the self-tests in ``tests/analysis/test_sanitizer.py`` (which
sanitize workload classes defined in the test file), these run the
*shipped* modules — the ledgers and the metrics registry — under the
sanitizer's default targets and assert they are race-free now that
every shared mutation runs under a lock.  The ``race_sanitizer``
fixture comes from the ``repro.analysis.pytest_race`` plugin, the same
one ``repro-icrowd lint --race`` loads for the whole suite.
"""

from __future__ import annotations

import threading

from repro.analysis.sanitizer import sanitized
from repro.obs.metrics import MetricsRegistry
from repro.platform.leases import LeaseLedger
from repro.platform.payments import PaymentLedger

pytest_plugins = ("repro.analysis.pytest_race",)

THREADS = 4
ROUNDS = 50


def _run_threads(target) -> None:
    threads = [
        threading.Thread(target=target, args=(i,))
        for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_lease_ledger_hammer_is_race_free(race_sanitizer):
    ledger = LeaseLedger(timeout=1000)

    def work(i: int) -> None:
        for k in range(ROUNDS):
            ledger.issue(f"w{i}", k, now=0)
            ledger.settle(f"w{i}", k, now=1)

    _run_threads(work)
    assert race_sanitizer.reports == [], race_sanitizer.format_reports()
    assert ledger.stats.answered == THREADS * ROUNDS


def test_payment_ledger_hammer_is_race_free(race_sanitizer):
    ledger = PaymentLedger(price_per_microtask=0.25)

    def work(i: int) -> None:
        for k in range(ROUNDS):
            ledger.pay_once("w", k)

    _run_threads(work)
    assert race_sanitizer.reports == [], race_sanitizer.format_reports()
    assert ledger.payments_made("w") == ROUNDS


def test_metrics_registry_hammer_is_race_free(race_sanitizer):
    registry = MetricsRegistry()

    def work(i: int) -> None:
        for k in range(ROUNDS):
            registry.counter("hits", "shared counter").inc()
            registry.counter(f"own_{i}_{k}", "private counter").inc()

    _run_threads(work)
    assert race_sanitizer.reports == [], race_sanitizer.format_reports()
    snapshot = registry.snapshot()
    assert snapshot["hits"] == THREADS * ROUNDS


def test_sanitizer_still_catches_a_seeded_platform_race():
    """Control: the clean results above are not a dead detector."""

    class Bare:
        def __init__(self) -> None:
            self.total = 0

    with sanitized(extra_files=[__file__]) as sanitizer:
        shared = Bare()

        def work(i: int) -> None:
            for _ in range(ROUNDS):
                shared.total += 1

        _run_threads(work)
    assert len(sanitizer.reports) == 1
    assert sanitizer.reports[0].attr == "total"
