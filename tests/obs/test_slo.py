"""SLO evaluation over span histograms."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    evaluate_slos,
    histogram_quantile,
)


def _span_histogram(registry, name, values, buckets=(0.1, 0.5, 1.0)):
    hist = registry.histogram(
        "repro_span_duration_seconds",
        "Wall time spent inside named spans.",
        buckets=buckets,
        span=name,
    )
    for value in values:
        hist.observe(value)
    return hist


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        hist = _span_histogram(MetricsRegistry(), "s", [])
        assert math.isnan(histogram_quantile(hist, 0.5))

    def test_interpolates_within_bucket(self):
        # 10 observations all landing in (0.1, 0.5]: p50 interpolates
        # linearly to the middle of that bucket
        hist = _span_histogram(MetricsRegistry(), "s", [0.3] * 10)
        assert histogram_quantile(hist, 0.5) == pytest.approx(0.3)
        assert histogram_quantile(hist, 1e-9) == pytest.approx(0.1, abs=0.01)

    def test_inf_bucket_reports_largest_finite_bound(self):
        hist = _span_histogram(MetricsRegistry(), "s", [5.0, 7.0])
        assert histogram_quantile(hist, 0.99) == 1.0

    def test_mixed_distribution(self):
        values = [0.05] * 5 + [0.3] * 4 + [0.9]
        hist = _span_histogram(MetricsRegistry(), "s", values)
        # rank 9.9 of 10 lands in the (0.5, 1.0] bucket
        assert 0.5 < histogram_quantile(hist, 0.99) <= 1.0
        # rank 5 of 10 is exactly the last observation of bucket one
        assert histogram_quantile(hist, 0.5) == pytest.approx(0.1)


class TestSLOValidation:
    def test_quantile_bounds(self):
        with pytest.raises(ValueError, match="quantile"):
            SLO("x", "m", quantile=1.0, threshold=1.0)
        with pytest.raises(ValueError, match="quantile"):
            SLO("x", "m", quantile=0.0, threshold=1.0)

    def test_threshold_positive(self):
        with pytest.raises(ValueError, match="threshold"):
            SLO("x", "m", quantile=0.5, threshold=0.0)

    def test_span_constructor_targets_span_histogram(self):
        slo = SLO.span("p99", "server.request", 0.99, 0.5)
        assert slo.metric == "repro_span_duration_seconds"
        assert slo.labels == (("span", "server.request"),)


class TestEvaluation:
    def test_passing_objective(self):
        registry = MetricsRegistry()
        _span_histogram(registry, "fast", [0.05] * 100)
        report = evaluate_slos(
            registry, (SLO.span("fast_p99", "fast", 0.99, 0.5),)
        )
        (result,) = report.results
        assert result.passed and not result.skipped
        assert result.count == 100
        assert result.violations == 0
        assert result.budget_used == 0.0
        assert report.passed

    def test_failing_objective_spends_budget(self):
        registry = MetricsRegistry()
        # 10% of observations above the 0.5s threshold, p90 target:
        # allowance is exactly the violating mass -> budget fully spent
        _span_histogram(registry, "slow", [0.05] * 90 + [0.9] * 10)
        report = evaluate_slos(
            registry, (SLO.span("slow_p95", "slow", 0.95, 0.5),)
        )
        (result,) = report.results
        assert not result.passed
        assert result.violations == 10
        assert result.budget_used == pytest.approx(2.0)
        assert not report.passed
        assert "FAIL" in report.format_table()

    def test_missing_histogram_skips_and_never_fails(self):
        report = evaluate_slos(
            MetricsRegistry(), (SLO.span("ghost", "nothing", 0.99, 1.0),)
        )
        (result,) = report.results
        assert result.skipped and result.passed
        assert report.passed
        assert "skip" in report.format_table()

    def test_as_dict_json_safe_with_nan_observed(self):
        import json

        report = evaluate_slos(
            MetricsRegistry(), (SLO.span("ghost", "nothing", 0.99, 1.0),)
        )
        payload = report.as_dict()
        encoded = json.dumps(payload)
        assert "NaN" not in encoded
        assert payload["objectives"][0]["observed_s"] is None

    def test_label_match_is_exact(self):
        registry = MetricsRegistry()
        _span_histogram(registry, "a", [0.01])
        report = evaluate_slos(
            registry, (SLO.span("b_p99", "b", 0.99, 1.0),)
        )
        assert report.results[0].skipped

    def test_default_slos_cover_serving_and_offline_paths(self):
        spans = {dict(slo.labels)["span"] for slo in DEFAULT_SLOS}
        assert "server.request" in spans
        assert "server.submit" in spans
        assert "assigner.scheme" in spans
