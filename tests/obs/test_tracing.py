"""Span nesting, deterministic clocks and JSONL traces."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Stopwatch


class FakeClock:
    """Deterministic monotonic clock advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestStopwatch:
    def test_measures_interval(self):
        clock = FakeClock(step=2.0)
        with Stopwatch(clock=clock) as sw:
            pass
        assert sw.elapsed == 2.0
        # frozen after exit
        assert sw.elapsed == 2.0

    def test_live_reads_inside_context(self):
        clock = FakeClock(step=1.0)
        with Stopwatch(clock=clock) as sw:
            first = sw.elapsed
            second = sw.elapsed
        assert second > first

    def test_unstarted_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().elapsed


class TestSpans:
    def test_span_records_histogram(self):
        reg = MetricsRegistry(clock=FakeClock(step=0.25))
        with reg.span("work"):
            pass
        rows = reg.span_summary()
        assert rows == [("work", 1, 0.25, 0.25)]

    def test_nesting_tracks_parent_and_depth(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("outer") as outer:
            with reg.span("inner") as inner:
                assert inner.parent == "outer"
                assert inner.depth == 1
            assert outer.parent is None
            assert outer.depth == 0

    def test_span_summary_sorted_by_total(self):
        reg = MetricsRegistry(clock=FakeClock(step=1.0))
        with reg.span("short"):
            pass
        clock = FakeClock(step=5.0)
        reg.clock = clock
        with reg.span("long"):
            pass
        names = [row[0] for row in reg.span_summary()]
        assert names == ["long", "short"]

    def test_format_span_table_has_header_and_rows(self):
        reg = MetricsRegistry(clock=FakeClock())
        with reg.span("alpha"):
            pass
        table = reg.format_span_table()
        assert "span" in table and "count" in table
        assert "alpha" in table

    def test_format_span_table_empty(self):
        assert "(no spans recorded)" in MetricsRegistry().format_span_table()


class TestSpanIdentity:
    def _registry(self, seed=7, **kwargs):
        from repro.obs.ids import TraceIdSource

        return MetricsRegistry(
            clock=FakeClock(), ids=TraceIdSource(seed=seed), **kwargs
        )

    def test_root_span_gets_fresh_trace(self):
        reg = self._registry()
        with reg.span("root") as span:
            assert len(span.trace_id) == 32
            assert len(span.span_id) == 16
            assert span.parent_id is None

    def test_nested_span_inherits_trace_and_parents_on_span_id(self):
        reg = self._registry()
        with reg.span("outer") as outer:
            with reg.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert inner.span_id != outer.span_id

    def test_sibling_roots_get_distinct_traces(self):
        reg = self._registry()
        with reg.span("first") as first:
            pass
        with reg.span("second") as second:
            pass
        assert first.trace_id != second.trace_id

    def test_remote_context_joins_the_remote_trace(self):
        from repro.obs.ids import TraceContext

        remote = TraceContext(trace_id="1a" * 16, span_id="2b" * 8)
        reg = self._registry()
        with reg.span("server.request", remote_context=remote) as span:
            assert span.trace_id == remote.trace_id
            assert span.parent_id == remote.span_id
            assert span.span_id != remote.span_id

    def test_trace_records_carry_identity(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        reg = self._registry(trace_path=path)
        with reg.span("outer"):
            with reg.span("inner"):
                pass
        reg.close()
        inner, outer = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None

    def test_same_seed_yields_identical_identities(self, tmp_path):
        traces = []
        for run in range(2):
            path = tmp_path / f"trace{run}.jsonl"
            reg = self._registry(seed=11, trace_path=path)
            with reg.span("outer"):
                with reg.span("inner"):
                    pass
            reg.close()
            traces.append(path.read_text())
        assert traces[0] == traces[1]

    def test_default_id_source_is_still_deterministic(self):
        # a registry without an explicit TraceIdSource falls back to the
        # default-seeded source: ids exist and replay identically
        first = MetricsRegistry(clock=FakeClock())
        second = MetricsRegistry(clock=FakeClock())
        with first.span("anon") as a, second.span("anon") as b:
            assert a.trace_id and a.trace_id == b.trace_id


class TestTraceFile:
    def test_trace_records_written_and_parseable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        reg = MetricsRegistry(clock=FakeClock(step=0.5), trace_path=path)
        with reg.span("outer", stage="offline"):
            with reg.span("inner"):
                pass
        reg.close()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        # inner closes first
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["type"] == "span"
        assert records[0]["parent"] == "outer"
        assert records[0]["depth"] == 1
        assert records[1]["stage"] == "offline"
        assert records[1]["parent"] is None

    def test_trace_truncated_per_registry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            reg = MetricsRegistry(trace_path=path)
            with reg.span("only"):
                pass
            reg.close()
        assert len(path.read_text().splitlines()) == 1

    def test_close_is_idempotent_and_write_after_close_safe(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        reg = MetricsRegistry(trace_path=path)
        reg.close()
        reg.close()
        with reg.span("late"):
            pass  # trace writer closed: histogram still records
        assert reg.span_summary()[0][0] == "late"
