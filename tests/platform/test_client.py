"""Tests for the bounded-retry HTTP client."""

import pytest

from repro.baselines import RandomMV
from repro.core.types import Label, Task, TaskSet
from repro.platform import ICrowdClient, SubmitResult, TransportError
from repro.platform.server import ICrowdHTTPServer


@pytest.fixture
def tasks():
    return TaskSet(
        [
            Task(i, f"microtask {i} shared tokens", "d",
                 Label.YES if i % 2 == 0 else Label.NO)
            for i in range(4)
        ]
    )


@pytest.fixture
def server(tasks):
    policy = RandomMV(tasks, k=1, seed=0)
    with ICrowdHTTPServer(tasks, policy) as srv:
        yield srv


class TestAgainstLiveServer:
    def test_full_job_through_the_client(self, server):
        client = ICrowdClient(server.address)
        while True:
            task = client.request_task("w1")
            if task is None:
                break
            result = client.submit("w1", task["task_id"], 1)
            assert result.accepted
            assert result.ok
            assert result.attempts == 1
        status = client.status()
        assert status["finished"] is True
        assert status["leases"]["answered"] == 4

    def test_replayed_submit_is_ok_not_error(self, server):
        client = ICrowdClient(server.address)
        task = client.request_task("w1")
        first = client.submit("w1", task["task_id"], 1)
        assert first.accepted
        # the at-least-once case: the POST landed but its response was
        # lost and the client sent it again
        replay = client.submit("w1", task["task_id"], 1)
        assert replay.deduplicated
        assert replay.ok
        assert not replay.accepted

    def test_4xx_not_retried(self, server):
        client = ICrowdClient(server.address, max_retries=3)
        result = client.submit("ghost", 0, 1)
        assert result.status == 404
        assert result.attempts == 1
        assert not result.ok


class TestTransportFailures:
    def test_retries_then_raises_transport_error(self, tasks):
        # bind-then-close to get a port nothing listens on
        policy = RandomMV(tasks, k=1, seed=0)
        probe = ICrowdHTTPServer(tasks, policy)
        dead_address = probe.address
        probe._httpd.server_close()
        client = ICrowdClient(dead_address, max_retries=2, backoff=0.0)
        with pytest.raises(TransportError, match="3 attempts"):
            client.request_task("w1")

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            ICrowdClient(("127.0.0.1", 1), max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            ICrowdClient(("127.0.0.1", 1), backoff=-0.1)


class TestSubmitResult:
    def test_flags(self):
        accepted = SubmitResult(200, {"accepted": True}, attempts=1)
        ignored = SubmitResult(200, {"accepted": False}, attempts=1)
        dup = SubmitResult(409, {"error": "already"}, attempts=2)
        late = SubmitResult(410, {"error": "expired"}, attempts=1)
        assert accepted.ok and accepted.accepted
        assert not ignored.ok and not ignored.accepted
        assert dup.ok and dup.deduplicated and not dup.accepted
        assert late.expired and not late.ok
