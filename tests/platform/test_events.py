"""Unit tests for the platform event log."""

from repro.core.types import Label
from repro.platform.events import (
    AnswerEvent,
    AssignEvent,
    CompleteEvent,
    EventLog,
    RejectEvent,
    RequestEvent,
)


def sample_log():
    log = EventLog()
    log.append(RequestEvent(step=1, worker_id="w1"))
    log.append(AssignEvent(step=1, worker_id="w1", task_id=0, is_test=False))
    log.append(
        AnswerEvent(
            step=1, worker_id="w1", task_id=0, label=Label.YES, is_test=False
        )
    )
    log.append(
        AnswerEvent(
            step=2, worker_id="w2", task_id=0, label=Label.NO, is_test=True
        )
    )
    log.append(CompleteEvent(step=3, task_id=0, consensus=Label.YES))
    log.append(RejectEvent(step=4, worker_id="w3"))
    return log


class TestEventLog:
    def test_len_and_iter(self):
        log = sample_log()
        assert len(log) == 6
        assert len(list(log)) == 6

    def test_typed_accessors(self):
        log = sample_log()
        assert len(log.answers()) == 2
        assert len(log.assignments()) == 1
        assert len(log.completions()) == 1
        assert len(log.rejections()) == 1

    def test_assignment_counts_excludes_tests_by_default(self):
        log = sample_log()
        counts = log.assignment_counts()
        assert counts == {"w1": 1}

    def test_assignment_counts_with_tests(self):
        log = sample_log()
        counts = log.assignment_counts(include_tests=True)
        assert counts == {"w1": 1, "w2": 1}

    def test_empty_log(self):
        log = EventLog()
        assert len(log) == 0
        assert log.assignment_counts() == {}


class TestJsonlRoundTrip:
    def test_round_trip_preserves_events(self, tmp_path):
        log = sample_log()
        path = tmp_path / "events.jsonl"
        log.to_jsonl(path)
        loaded = EventLog.from_jsonl(path)
        assert loaded.events == log.events
        # labels come back as the Label enum, not bare ints
        assert isinstance(loaded.answers()[0].label, Label)

    def test_append_mode_extends_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = sample_log()
        log.to_jsonl(path)
        log.to_jsonl(path, append=True)
        assert len(EventLog.from_jsonl(path)) == 2 * len(log)

    def test_unknown_types_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        log = sample_log()
        log.to_jsonl(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "x", "elapsed": 0.1}\n')
            fh.write("\n")
            fh.write('{"type": "mystery"}\n')
        loaded = EventLog.from_jsonl(path)
        assert loaded.events == log.events

    def test_event_dict_round_trip_units(self):
        from repro.platform.events import event_from_dict, event_to_dict

        for event in sample_log():
            record = event_to_dict(event)
            assert record["type"] in (
                "request", "assign", "answer", "complete", "reject",
                "expire",
            )
            assert event_from_dict(record) == event

    def test_unknown_fields_dropped_not_fatal(self):
        from repro.platform.events import event_from_dict

        event = event_from_dict(
            {"type": "request", "step": 1, "worker_id": "w", "extra": 9}
        )
        assert event == RequestEvent(step=1, worker_id="w")
