"""Unit tests for the platform event log."""

from repro.core.types import Label
from repro.platform.events import (
    AnswerEvent,
    AssignEvent,
    CompleteEvent,
    EventLog,
    RejectEvent,
    RequestEvent,
)


def sample_log():
    log = EventLog()
    log.append(RequestEvent(step=1, worker_id="w1"))
    log.append(AssignEvent(step=1, worker_id="w1", task_id=0, is_test=False))
    log.append(
        AnswerEvent(
            step=1, worker_id="w1", task_id=0, label=Label.YES, is_test=False
        )
    )
    log.append(
        AnswerEvent(
            step=2, worker_id="w2", task_id=0, label=Label.NO, is_test=True
        )
    )
    log.append(CompleteEvent(step=3, task_id=0, consensus=Label.YES))
    log.append(RejectEvent(step=4, worker_id="w3"))
    return log


class TestEventLog:
    def test_len_and_iter(self):
        log = sample_log()
        assert len(log) == 6
        assert len(list(log)) == 6

    def test_typed_accessors(self):
        log = sample_log()
        assert len(log.answers()) == 2
        assert len(log.assignments()) == 1
        assert len(log.completions()) == 1
        assert len(log.rejections()) == 1

    def test_assignment_counts_excludes_tests_by_default(self):
        log = sample_log()
        counts = log.assignment_counts()
        assert counts == {"w1": 1}

    def test_assignment_counts_with_tests(self):
        log = sample_log()
        counts = log.assignment_counts(include_tests=True)
        assert counts == {"w1": 1, "w2": 1}

    def test_empty_log(self):
        log = EventLog()
        assert len(log) == 0
        assert log.assignment_counts() == {}
