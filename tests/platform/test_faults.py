"""Fault injection and chaos resilience (the tentpole's contract).

The first class pins the regression guarantee: a platform constructed
without a fault config and one with ``FaultConfig.disabled()`` produce
byte-identical runs on a fixed seed.  The rest drives real policies
through injected duplicates, late answers, blackouts and malformed
submits and checks the resilient-loop invariants (job finishes, no
double payments, accuracy holds up).
"""

import pytest

from repro.baselines import RandomMV
from repro.core.types import Label, Task, TaskSet
from repro.platform import FaultConfig, FaultInjector, SimulatedPlatform
from repro.workers import WorkerPool, generate_profiles

pytestmark = pytest.mark.faults


def make_tasks(n=6, domain="d"):
    return TaskSet(
        [
            Task(i, f"task {i} tokens shared", domain,
                 Label.YES if i % 2 == 0 else Label.NO)
            for i in range(n)
        ]
    )


def make_pool(n=5, seed=0, domains=("d",)):
    return WorkerPool(generate_profiles(list(domains), n, seed=seed),
                      seed=seed)


def run_once(faults, *, seed=3, abandonment=0.0, timeout=50):
    tasks = make_tasks(6)
    pool = make_pool(5, seed=seed)
    policy = RandomMV(tasks, k=3, seed=seed)
    platform = SimulatedPlatform(
        tasks, pool, policy,
        abandonment=abandonment,
        assignment_timeout=timeout,
        faults=faults,
        seed=seed,
    )
    return platform.run(), pool


class TestDisabledFaultsAreFree:
    def test_run_byte_identical_with_and_without_fault_config(self):
        """faults=None and FaultConfig.disabled() must not differ in a
        single event, payment or prediction."""
        baseline, _ = run_once(None)
        disabled, _ = run_once(FaultConfig.disabled())
        assert list(baseline.events) == list(disabled.events)
        assert baseline.predictions == disabled.predictions
        assert baseline.steps == disabled.steps
        assert baseline.total_cost == disabled.total_cost
        assert (
            baseline.payments.statement()
            == disabled.payments.statement()
        )

    def test_disabled_stats_stay_zero(self):
        report, _ = run_once(FaultConfig.disabled())
        assert all(v == 0 for v in report.faults.as_dict().values())
        assert report.leases.expired == 0


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="late_answer"):
            FaultConfig(late_answer=1.5)
        with pytest.raises(ValueError, match="blackout_fraction"):
            FaultConfig(blackout_fraction=0.0)
        with pytest.raises(ValueError, match="blackout_duration"):
            FaultConfig(blackout_duration=0)

    def test_chaos_profile(self):
        config = FaultConfig.chaos(0.2, seed=9)
        assert config.duplicate_submission == 0.2
        assert config.late_answer == 0.2
        assert config.malformed_submission == 0.1
        assert config.blackout_rate == pytest.approx(0.04)
        assert config.enabled
        assert "duplicate_submission=0.2" in config.describe()
        assert FaultConfig.disabled().describe() == "none"

    def test_injector_draws_nothing_at_rate_zero(self):
        injector = FaultInjector(FaultConfig.disabled(), seed=0)
        state_before = injector._rng.bit_generator.state
        assert not injector.duplicate_submission()
        assert not injector.late_answer()
        assert not injector.malformed_submission()
        assert injector.blackout_victims(["w1", "w2"]) == []
        assert injector._rng.bit_generator.state == state_before


class TestInjectedFaults:
    def test_duplicates_never_double_pay_or_double_count(self):
        faults = FaultConfig(duplicate_submission=0.5)
        report, _ = run_once(faults)
        assert report.finished
        assert report.faults.duplicates_injected > 0
        assert (
            report.faults.duplicates_dropped
            == report.faults.duplicates_injected
        )
        assert report.payments.duplicate_attempts == 0
        # every recorded answer was paid exactly once
        assert report.total_cost == pytest.approx(
            report.num_answers * 0.01
        )
        # and k votes per task, never more
        assert report.num_answers == 6 * 3

    def test_late_answers_dropped_and_slot_requeued(self):
        faults = FaultConfig(late_answer=0.4)
        report, _ = run_once(faults, timeout=5)
        assert report.finished
        assert report.faults.late_injected > 0
        # every held answer that came due was dropped; a few may still
        # be in flight when the job finishes
        assert 0 < report.faults.late_dropped <= report.faults.late_injected
        assert report.leases.expired >= report.faults.late_dropped
        assert len(report.events.expirations()) == report.leases.expired
        assert report.num_answers == 6 * 3

    def test_malformed_submissions_never_reach_the_policy(self):
        faults = FaultConfig(malformed_submission=0.3)
        report, _ = run_once(faults, timeout=5)
        assert report.finished
        assert report.faults.malformed_injected > 0
        assert report.num_answers == 6 * 3

    def test_blackout_bursts_suspend_but_do_not_stall(self):
        faults = FaultConfig(
            blackout_rate=0.2, blackout_fraction=0.5,
            blackout_duration=4,
        )
        report, _ = run_once(faults)
        assert report.finished
        assert report.faults.blackout_bursts > 0
        assert report.faults.blackout_workers > 0

    def test_everything_at_once(self):
        report, _ = run_once(FaultConfig.chaos(0.2, seed=1), timeout=8)
        assert report.finished
        assert report.payments.duplicate_attempts == 0
        assert report.num_answers == 6 * 3


class TestAbandonment:
    def test_abandoning_worker_not_credited_a_submission(self):
        report, pool = run_once(None, abandonment=0.4, timeout=5)
        assert report.finished
        abandoned = pool.abandonment_counts()
        assert sum(abandoned.values()) > 0
        # submissions credited == answers actually recorded
        assert (
            sum(pool.submission_counts().values()) == report.num_answers
        )
        # every walked-away slot expired and was requeued
        assert report.leases.expired >= sum(abandoned.values())

    def test_expiry_runs_without_abandonment(self):
        """The sweep is unconditional: late answers expire leases even
        when abandonment is 0 (the old gating bug)."""
        report, _ = run_once(
            FaultConfig(late_answer=0.5), abandonment=0.0, timeout=5
        )
        assert report.leases.expired > 0
        assert len(report.events.expirations()) > 0


class TestICrowdUnderChaos:
    """Acceptance: iCrowd at 10% duplicate+late faults still finishes,
    never double-pays, and loses at most 2 accuracy points."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.experiments import make_setup

        return make_setup("itemcompare", seed=7, scale=0.1)

    def run_icrowd(self, setup, faults):
        from repro.experiments.runner import build_policy

        policy = build_policy("iCrowd", setup)
        pool = setup.fresh_pool(run_tag="chaos-acceptance")
        platform = SimulatedPlatform(
            setup.tasks, pool, policy, faults=faults, seed=7
        )
        report = platform.run()
        accuracy = report.accuracy(
            setup.tasks, exclude=set(setup.qualification_tasks)
        )
        return report, accuracy

    def test_icrowd_resilient_at_ten_percent_faults(self, setup):
        clean_report, clean_accuracy = self.run_icrowd(setup, None)
        faults = FaultConfig(
            duplicate_submission=0.10, late_answer=0.10
        )
        report, accuracy = self.run_icrowd(setup, faults)
        assert clean_report.finished
        assert report.finished
        assert (
            report.faults.duplicates_injected
            + report.faults.late_injected
            > 0
        )
        assert report.payments.duplicate_attempts == 0
        assert accuracy >= clean_accuracy - 0.02
