"""Unit tests for HIT batching and the payment ledger."""

import pytest

from repro.platform.hits import HIT, build_hits
from repro.platform.payments import PaymentLedger


class TestHIT:
    def test_price_per_microtask(self):
        hit = HIT("h0", tuple(range(10)), price_per_assignment=0.10)
        assert hit.price_per_microtask == pytest.approx(0.01)
        assert hit.size == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            HIT("h0", ())
        with pytest.raises(ValueError):
            HIT("h0", (1,), price_per_assignment=-0.1)
        with pytest.raises(ValueError):
            HIT("h0", (1,), max_assignments=0)


class TestBuildHits:
    def test_paper_batching(self):
        """Section 6.1: 10 microtasks per HIT at $0.10."""
        hits = build_hits(list(range(110)))
        assert len(hits) == 11
        assert all(h.size == 10 for h in hits)
        assert all(h.price_per_assignment == 0.10 for h in hits)

    def test_last_hit_may_be_short(self):
        hits = build_hits(list(range(25)), tasks_per_hit=10)
        assert [h.size for h in hits] == [10, 10, 5]

    def test_all_tasks_covered_once(self):
        hits = build_hits(list(range(37)), tasks_per_hit=7)
        covered = [t for h in hits for t in h.task_ids]
        assert covered == list(range(37))

    def test_unique_hit_ids(self):
        hits = build_hits(list(range(50)))
        assert len({h.hit_id for h in hits}) == len(hits)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            build_hits([1, 2], tasks_per_hit=0)


class TestPaymentLedger:
    def test_pay_accumulates(self):
        ledger = PaymentLedger(price_per_microtask=0.01)
        ledger.pay("w1")
        ledger.pay("w1")
        ledger.pay("w2")
        assert ledger.earnings("w1") == pytest.approx(0.02)
        assert ledger.payments_made("w1") == 2
        assert ledger.total_cost == pytest.approx(0.03)

    def test_explicit_amount(self):
        ledger = PaymentLedger()
        ledger.pay("w1", amount=0.5)
        assert ledger.earnings("w1") == pytest.approx(0.5)

    def test_unknown_worker_zero(self):
        ledger = PaymentLedger()
        assert ledger.earnings("ghost") == 0.0
        assert ledger.payments_made("ghost") == 0

    def test_statement_snapshot(self):
        ledger = PaymentLedger(price_per_microtask=0.02)
        ledger.pay("a")
        statement = ledger.statement()
        statement["a"] = 99.0  # mutating the snapshot is safe
        assert ledger.earnings("a") == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            PaymentLedger(price_per_microtask=-0.01)
        ledger = PaymentLedger()
        with pytest.raises(ValueError):
            ledger.pay("w", amount=-1.0)
