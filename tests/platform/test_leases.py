"""Unit tests for the assignment-lease ledger."""

import pytest

from repro.platform.leases import (
    LeaseLedger,
    LeaseStatus,
    SettleResult,
)


class TestIssueAndSettle:
    def test_issue_opens_pending_lease(self):
        ledger = LeaseLedger(timeout=5)
        lease = ledger.issue("w1", 3, now=10)
        assert lease.status is LeaseStatus.PENDING
        assert lease.expires_at == 15
        assert ledger.has_pending("w1", 3)
        assert ledger.stats.issued == 1

    def test_in_time_answer_settles(self):
        ledger = LeaseLedger(timeout=5)
        ledger.issue("w1", 3, now=10)
        assert ledger.settle("w1", 3, now=15) is SettleResult.ANSWERED
        assert not ledger.has_pending("w1", 3)
        assert ledger.stats.answered == 1

    def test_repeat_answer_is_duplicate(self):
        ledger = LeaseLedger(timeout=5)
        ledger.issue("w1", 3, now=10)
        ledger.settle("w1", 3, now=11)
        assert ledger.settle("w1", 3, now=12) is SettleResult.DUPLICATE
        assert ledger.stats.duplicate_answers == 1

    def test_never_issued_is_unknown(self):
        ledger = LeaseLedger(timeout=5)
        assert ledger.settle("w1", 3, now=1) is SettleResult.UNKNOWN

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            LeaseLedger(timeout=0)


class TestExpiry:
    def test_sweep_expires_overdue_leases_only(self):
        ledger = LeaseLedger(timeout=5)
        ledger.issue("w1", 1, now=0)
        ledger.issue("w2", 2, now=3)
        # w1 expires after tick 5, w2 after tick 8
        assert ledger.expire_due(now=5) == []
        due = ledger.expire_due(now=6)
        assert [lease.key for lease in due] == [("w1", 1)]
        assert due[0].status is LeaseStatus.EXPIRED
        assert ledger.has_pending("w2", 2)
        assert ledger.stats.expired == 1

    def test_answer_after_sweep_is_late_once(self):
        ledger = LeaseLedger(timeout=5)
        ledger.issue("w1", 1, now=0)
        ledger.expire_due(now=6)
        assert ledger.settle("w1", 1, now=7) is SettleResult.LATE
        # the late classification is consumed; a second submit for a
        # pair with no history is UNKNOWN, not LATE again
        assert ledger.settle("w1", 1, now=8) is SettleResult.UNKNOWN
        assert ledger.stats.late_answers == 1

    def test_answer_past_deadline_before_sweep_is_late(self):
        ledger = LeaseLedger(timeout=5)
        ledger.issue("w1", 1, now=0)
        assert ledger.settle("w1", 1, now=6) is SettleResult.LATE
        assert ledger.stats.expired == 1
        assert ledger.stats.late_answers == 1

    def test_reissue_after_expiry_counts_and_settles(self):
        ledger = LeaseLedger(timeout=5)
        ledger.issue("w1", 1, now=0)
        ledger.expire_due(now=6)
        ledger.issue("w1", 1, now=7)
        assert ledger.stats.reissued == 1
        assert ledger.settle("w1", 1, now=9) is SettleResult.ANSWERED


class TestViews:
    def test_outstanding_is_a_copy(self):
        ledger = LeaseLedger(timeout=5)
        ledger.issue("w1", 1, now=0)
        view = ledger.outstanding()
        view.clear()
        assert ledger.has_pending("w1", 1)

    def test_has_seen_covers_all_states(self):
        ledger = LeaseLedger(timeout=5)
        assert not ledger.has_seen("w1")
        ledger.issue("w1", 1, now=0)
        assert ledger.has_seen("w1")  # pending
        ledger.settle("w1", 1, now=1)
        assert ledger.has_seen("w1")  # answered
        ledger.issue("w2", 2, now=0)
        ledger.expire_due(now=6)
        assert ledger.has_seen("w2")  # expired
