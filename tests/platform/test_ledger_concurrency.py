"""Concurrency regression hammers for the platform ledgers.

The HTTP facade serves every request on its own thread, and the lease,
payment and event ledgers are all reachable from those handler threads.
Each test here is a distilled version of a race the lockset sanitizer
(:mod:`repro.analysis.sanitizer`) reported before the ledgers grew
their own locks:

- ``LeaseLedger`` — concurrent issue/settle/expire tearing ``_pending``
  and losing ``stats`` updates;
- ``PaymentLedger.pay_once`` — the paid-key check and the credit were
  two steps, so duplicate submissions could double-pay;
- ``EventLog`` — appends racing a reader's iteration;
- ``MetricsRegistry.metrics()`` — copying the instrument dict while a
  handler thread registers a new instrument.

They assert exact counter totals, not absence of exceptions alone, so
a lost update fails even when nothing raises.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry
from repro.platform.events import EventLog, RequestEvent
from repro.platform.leases import LeaseLedger, SettleResult
from repro.platform.payments import PaymentLedger

THREADS = 8
ROUNDS = 300


def _run_threads(target, count: int = THREADS) -> None:
    """Start ``count`` threads on ``target(i)`` behind a barrier."""
    barrier = threading.Barrier(count)

    def runner(i: int) -> None:
        barrier.wait()
        target(i)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(count)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestLeaseLedgerHammer:
    def test_concurrent_issue_settle_exact_counts(self):
        ledger = LeaseLedger(timeout=10_000)

        def work(i: int) -> None:
            for k in range(ROUNDS):
                ledger.issue(f"w{i}", k, now=0)
                assert (
                    ledger.settle(f"w{i}", k, now=1)
                    is SettleResult.ANSWERED
                )

        _run_threads(work)
        assert ledger.stats.issued == THREADS * ROUNDS
        assert ledger.stats.answered == THREADS * ROUNDS
        assert not ledger.outstanding()

    def test_concurrent_expiry_races_settlement(self):
        """Every lease ends exactly once: answered or expired, never both."""
        ledger = LeaseLedger(timeout=1)

        def work(i: int) -> None:
            if i == 0:
                for _ in range(ROUNDS):
                    ledger.expire_due(now=5)
                return
            for k in range(ROUNDS):
                ledger.issue(f"w{i}", k, now=0)
                ledger.settle(f"w{i}", k, now=5)  # past the deadline

        _run_threads(work)
        issued = (THREADS - 1) * ROUNDS
        assert ledger.stats.issued == issued
        # a stale answer is late whether the sweep or the settle won
        assert ledger.stats.expired + ledger.stats.late_answers >= issued
        assert ledger.stats.answered == 0


class TestPaymentLedgerHammer:
    def test_pay_once_is_atomic_per_key(self):
        """N threads race the same key: exactly one credit lands."""
        ledger = PaymentLedger(price_per_microtask=0.25)  # binary-exact

        def work(i: int) -> None:
            for k in range(ROUNDS):
                ledger.pay_once("w", k)

        _run_threads(work)
        assert ledger.payments_made("w") == ROUNDS
        assert ledger.earnings("w") == 0.25 * ROUNDS
        assert ledger.duplicate_attempts == (THREADS - 1) * ROUNDS

    def test_pay_never_loses_updates(self):
        ledger = PaymentLedger(price_per_microtask=1.0)

        def work(i: int) -> None:
            for _ in range(ROUNDS):
                ledger.pay("w")

        _run_threads(work)
        assert ledger.payments_made("w") == THREADS * ROUNDS
        assert ledger.total_cost == float(THREADS * ROUNDS)


class TestEventLogHammer:
    def test_appends_race_iteration(self):
        log = EventLog()
        done = threading.Event()
        seen: list[int] = []

        def reader() -> None:
            while not done.is_set():
                seen.append(sum(1 for _ in log))
            seen.append(len(log))

        def writer(i: int) -> None:
            for k in range(ROUNDS):
                log.append(RequestEvent(step=k, worker_id=f"w{i}"))

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            _run_threads(writer)
        finally:
            done.set()
            reader_thread.join()
        assert len(log) == THREADS * ROUNDS
        assert seen[-1] == THREADS * ROUNDS
        # counts observed mid-flight are monotone snapshots, never torn
        assert all(0 <= n <= THREADS * ROUNDS for n in seen)


class TestRegistryIterationHammer:
    def test_metrics_view_races_registration(self):
        """Iterating ``metrics()`` while handlers register instruments."""
        registry = MetricsRegistry()
        done = threading.Event()
        failures: list[BaseException] = []

        def reader() -> None:
            try:
                while not done.is_set():
                    for metric in registry.metrics():
                        assert metric.name
            except BaseException as exc:  # pragma: no cover - regression
                failures.append(exc)

        def writer(i: int) -> None:
            for k in range(ROUNDS):
                registry.counter(f"c_{i}_{k}", "hammer counter").inc()

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            _run_threads(writer)
        finally:
            done.set()
            reader_thread.join()
        assert not failures
        assert len(list(registry.metrics())) == THREADS * ROUNDS
