"""Unit tests for the simulated platform driver (Appendix A loop)."""

import pytest

from repro.baselines import RandomMV
from repro.core.types import Label, Task, TaskSet
from repro.platform import SimulatedPlatform
from repro.workers import WorkerPool, generate_profiles


def make_tasks(n=6, domain="d"):
    return TaskSet(
        [
            Task(i, f"task {i} tokens shared", domain,
                 Label.YES if i % 2 == 0 else Label.NO)
            for i in range(n)
        ]
    )


def make_pool(n=5, seed=0, domains=("d",)):
    return WorkerPool(generate_profiles(list(domains), n, seed=seed),
                      seed=seed)


class TestRun:
    def test_runs_to_completion(self):
        tasks = make_tasks(6)
        pool = make_pool(5)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        assert report.finished
        assert not report.stalled
        # every task collected exactly k answers
        assert report.num_answers == 6 * 3

    def test_step_cap_respected(self):
        tasks = make_tasks(6)
        pool = make_pool(5)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run(max_steps=4)
        assert report.steps <= 4
        assert not report.finished

    def test_stall_detected_with_too_few_workers(self):
        """k=3 but only 2 workers: tasks can never complete."""
        tasks = make_tasks(3)
        pool = make_pool(2)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        assert not report.finished
        assert report.stalled

    def test_payments_match_answers(self):
        tasks = make_tasks(4)
        pool = make_pool(4)
        policy = RandomMV(tasks, k=3, seed=0)
        platform = SimulatedPlatform(
            tasks, pool, policy,
            price_per_assignment=0.10, tasks_per_hit=10,
        )
        report = platform.run()
        assert report.total_cost == pytest.approx(
            report.num_answers * 0.01
        )

    def test_events_recorded_in_order(self):
        tasks = make_tasks(4)
        pool = make_pool(4)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        steps = [e.step for e in report.events]
        assert steps == sorted(steps)

    def test_completion_events_once_per_task(self):
        tasks = make_tasks(5)
        pool = make_pool(5)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        completed = [e.task_id for e in report.events.completions()]
        assert sorted(completed) == sorted(set(completed))
        assert len(completed) == 5


class TestAccuracyMetrics:
    def test_accuracy_against_truth(self):
        tasks = make_tasks(4)
        pool = make_pool(6)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        accuracy = report.accuracy(tasks)
        assert 0.0 <= accuracy <= 1.0

    def test_exclusion_removes_tasks_from_metric(self):
        tasks = make_tasks(4)
        pool = make_pool(6)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        all_tasks = report.accuracy(tasks)
        excluded = report.accuracy(tasks, exclude={0, 1, 2})
        # the restricted metric considers only one task → it is 0 or 1
        assert excluded in (0.0, 1.0)
        assert 0.0 <= all_tasks <= 1.0

    def test_accuracy_by_domain_partitions(self):
        tasks = TaskSet(
            [
                Task(0, "a", "x", Label.YES),
                Task(1, "b", "y", Label.NO),
                Task(2, "c", "x", Label.YES),
            ]
        )
        pool = make_pool(5, domains=("x", "y"))
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        by_domain = report.accuracy_by_domain(tasks)
        assert set(by_domain) == {"x", "y"}

    def test_empty_task_metric_is_nan_not_zero(self):
        """Excluding every task must not read as "all wrong"."""
        import math

        tasks = make_tasks(2)
        pool = make_pool(4)
        policy = RandomMV(tasks, k=3, seed=0)
        report = SimulatedPlatform(tasks, pool, policy).run()
        assert math.isnan(report.accuracy(tasks, exclude={0, 1}))
        by_domain = report.accuracy_by_domain(tasks, exclude={0, 1})
        assert all(math.isnan(v) for v in by_domain.values())
