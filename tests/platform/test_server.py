"""Integration tests for the Appendix A HTTP facade."""

import http.client
import json

import pytest

from repro.baselines import RandomMV
from repro.core.types import Label, Task, TaskSet
from repro.platform.server import ICrowdHTTPServer


@pytest.fixture
def tasks():
    return TaskSet(
        [
            Task(i, f"microtask {i} shared tokens", "d",
                 Label.YES if i % 2 == 0 else Label.NO)
            for i in range(4)
        ]
    )


@pytest.fixture
def server(tasks):
    policy = RandomMV(tasks, k=2, seed=0)
    with ICrowdHTTPServer(tasks, policy) as srv:
        yield srv


def call(server, method, path, payload=None):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=5)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body=body)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    data = json.loads(raw) if raw else None
    return response.status, data


class TestRequestEndpoint:
    def test_serves_a_task(self, server):
        status, body = call(server, "GET", "/request?worker=w1")
        assert status == 200
        assert 0 <= body["task_id"] < 4
        assert "microtask" in body["text"]
        assert body["is_test"] is False

    def test_missing_worker_param(self, server):
        status, body = call(server, "GET", "/request")
        assert status == 400
        assert "worker" in body["error"]

    def test_204_when_nothing_assignable(self, tasks):
        policy = RandomMV(tasks, k=1, seed=0)
        with ICrowdHTTPServer(tasks, policy) as srv:
            served = set()
            for _ in range(4):
                status, body = call(srv, "GET", "/request?worker=w1")
                assert status == 200
                served.add(body["task_id"])
                call(
                    srv,
                    "POST",
                    "/submit",
                    {
                        "worker": "w1",
                        "task_id": body["task_id"],
                        "label": 1,
                    },
                )
            status, _ = call(srv, "GET", "/request?worker=w1")
            assert status == 204


class TestSubmitEndpoint:
    def test_accepts_answer(self, server):
        status, body = call(server, "GET", "/request?worker=w1")
        task_id = body["task_id"]
        status, body = call(
            server,
            "POST",
            "/submit",
            {"worker": "w1", "task_id": task_id, "label": 1},
        )
        assert status == 200
        assert body["accepted"] is True

    def test_completion_reported(self, server):
        """With k=2, the second answer on a task reports completion."""
        completions = 0
        for worker in ("w1", "w2"):
            for _ in range(4):
                status, body = call(
                    server, "GET", f"/request?worker={worker}"
                )
                if status != 200:
                    break
                status, body = call(
                    server,
                    "POST",
                    "/submit",
                    {"worker": worker, "task_id": body["task_id"],
                     "label": 1},
                )
                assert status == 200
                completions += int(body["task_completed"])
        assert completions >= 1
        status, body = call(server, "GET", "/status")
        assert body["completed_tasks"] >= 1

    def test_duplicate_submit_conflict(self, server):
        status, body = call(server, "GET", "/request?worker=w1")
        task_id = body["task_id"]
        status, _ = call(
            server,
            "POST",
            "/submit",
            {"worker": "w1", "task_id": task_id, "label": 1},
        )
        assert status == 200
        # a re-delivered POST (client retry) must not double-record
        status, body = call(
            server,
            "POST",
            "/submit",
            {"worker": "w1", "task_id": task_id, "label": 0},
        )
        assert status == 409
        assert "already" in body["error"]

    def test_submit_without_assignment_conflict(self, server):
        """A known worker posting a task it was never assigned: 409."""
        status, body = call(server, "GET", "/request?worker=w1")
        other = (body["task_id"] + 1) % 4
        status, body = call(
            server,
            "POST",
            "/submit",
            {"worker": "w1", "task_id": other, "label": 1},
        )
        assert status == 409
        assert "no outstanding assignment" in body["error"]

    def test_unknown_worker_404(self, server):
        status, body = call(
            server,
            "POST",
            "/submit",
            {"worker": "ghost", "task_id": 0, "label": 1},
        )
        assert status == 404
        assert "worker" in body["error"]

    def test_bad_payloads(self, server):
        status, _ = call(server, "POST", "/submit", {"worker": "w"})
        assert status == 400
        # unknown task id is 404 (resource), not 400 (syntax)
        status, _ = call(
            server,
            "POST",
            "/submit",
            {"worker": "w", "task_id": 99, "label": 1},
        )
        assert status == 404
        status, _ = call(
            server,
            "POST",
            "/submit",
            {"worker": "w", "task_id": 0, "label": 7},
        )
        assert status == 400
        status, _ = call(server, "POST", "/submit", [1, 2, 3])
        assert status == 400

    def test_expired_lease_410_and_requeue(self, tasks):
        """An answer arriving after lease expiry is refused and the
        slot is reassignable to another worker."""
        policy = RandomMV(tasks, k=1, seed=0)
        with ICrowdHTTPServer(tasks, policy, lease_timeout=2) as srv:
            status, body = call(srv, "GET", "/request?worker=w1")
            task_id = body["task_id"]
            # burn the lease: each interaction advances the clock
            for _ in range(4):
                call(srv, "GET", "/status")  # status does not tick
                call(srv, "GET", "/request?worker=w2")
            status, body = call(
                srv,
                "POST",
                "/submit",
                {"worker": "w1", "task_id": task_id, "label": 1},
            )
            assert status == 410
            assert "expired" in body["error"]
            # w1's slot reopened: some worker can still complete task_id
            done = False
            for _ in range(20):
                status, body = call(srv, "GET", "/request?worker=w3")
                if status != 200:
                    break
                status, body = call(
                    srv,
                    "POST",
                    "/submit",
                    {"worker": "w3", "task_id": body["task_id"],
                     "label": 1},
                )
                if body.get("task_completed"):
                    done = True
            status, body = call(srv, "GET", "/status")
            assert body["finished"] or done


class TestStatusAndLifecycle:
    def test_status_progression(self, tasks):
        policy = RandomMV(tasks, k=1, seed=0)
        with ICrowdHTTPServer(tasks, policy) as srv:
            status, body = call(srv, "GET", "/status")
            assert body["finished"] is False
            assert body["completed_tasks"] == 0
            assert body["total_tasks"] == 4
            assert body["leases"]["issued"] == 0
            for _ in range(4):
                status, body = call(srv, "GET", "/request?worker=w1")
                assert status == 200
                call(
                    srv,
                    "POST",
                    "/submit",
                    {"worker": "w1", "task_id": body["task_id"],
                     "label": 1},
                )
            status, body = call(srv, "GET", "/status")
            assert body["finished"] is True
            assert body["completed_tasks"] == 4
            assert body["leases"]["issued"] == 4
            assert body["leases"]["answered"] == 4
            assert body["leases"]["outstanding"] == 0

    def test_unknown_route(self, server):
        status, _ = call(server, "GET", "/nope")
        assert status == 404

    def test_double_start_rejected(self, tasks):
        policy = RandomMV(tasks, k=1, seed=0)
        server = ICrowdHTTPServer(tasks, policy)
        server.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()


class TestServerWithICrowd:
    def test_full_icrowd_job_over_http(self):
        """The complete Appendix A loop with the real framework."""
        from repro.core import ICrowd, ICrowdConfig
        from repro.core.config import GraphConfig, QualificationConfig
        from repro.datasets import make_itemcompare
        from repro.workers import WorkerPool, generate_profiles

        tasks = make_itemcompare(seed=5, tasks_per_domain=6)
        config = ICrowdConfig(
            qualification=QualificationConfig(
                num_qualification=4, qualification_threshold=0.0
            ),
            graph=GraphConfig(measure="jaccard", threshold=0.3),
            seed=5,
        )
        icrowd = ICrowd(tasks, config)
        pool = WorkerPool(
            generate_profiles(tasks.domains(), 8, seed=5), seed=5
        )
        with ICrowdHTTPServer(tasks, icrowd) as server:
            for step in range(2000):
                pool.tick()
                worker = pool.sample_requester()
                if worker is None:
                    continue
                status, body = call(
                    server, "GET", f"/request?worker={worker}"
                )
                if status != 200:
                    continue
                label = pool.worker(worker).answer(
                    tasks[body["task_id"]]
                )
                status, _ = call(
                    server,
                    "POST",
                    "/submit",
                    {
                        "worker": worker,
                        "task_id": body["task_id"],
                        "label": int(label),
                        "is_test": body["is_test"],
                    },
                )
                assert status == 200
                pool.note_submission(worker)
                if icrowd.is_finished():
                    break
            status, body = call(server, "GET", "/status")
            assert body["finished"] is True


class TestMetricsEndpoint:
    def test_prometheus_text_with_request_metrics(self, server):
        # generate some traffic first: a request, a submit, a late one
        status, body = call(server, "GET", "/request?worker=w1")
        assert status == 200
        call(
            server,
            "POST",
            "/submit",
            {"worker": "w1", "task_id": body["task_id"], "label": 1},
        )
        call(
            server,
            "POST",
            "/submit",
            {"worker": "w1", "task_id": body["task_id"], "label": 1},
        )
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=5)
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        text = response.read().decode("utf-8")
        content_type = response.getheader("Content-Type")
        conn.close()
        assert response.status == 200
        assert "version=0.0.4" in content_type
        # request-latency histogram per endpoint
        assert 'repro_http_request_seconds_bucket{endpoint="/request"' in text
        assert 'repro_http_request_seconds_bucket{endpoint="/submit"' in text
        # status-code counters
        assert (
            'repro_http_requests_total{endpoint="/request",status="200"} 1'
            in text
        )
        # lease counters from the shared ledger
        assert "repro_lease_issued_total 1" in text
        assert "repro_lease_answered_total 1" in text
        # the duplicate submit surfaced as a rejection counter
        assert (
            'repro_http_submit_rejections_total{reason="duplicate"} 1'
            in text
        )

    def test_shared_registry_aggregates_policy_metrics(self, tasks):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        policy = RandomMV(tasks, k=2, seed=0, recorder=registry)
        with ICrowdHTTPServer(tasks, policy, recorder=registry) as srv:
            status, _ = call(srv, "GET", "/request?worker=w1")
            assert status == 200
            host, port = srv.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/metrics")
            text = conn.getresponse().read().decode("utf-8")
            conn.close()
        assert "repro_policy_assignments_total 1" in text

    def test_metrics_disabled_with_null_recorder(self, tasks):
        from repro.obs.metrics import NULL_RECORDER

        policy = RandomMV(tasks, k=2, seed=0)
        with ICrowdHTTPServer(tasks, policy, recorder=NULL_RECORDER) as srv:
            host, port = srv.address
            conn = http.client.HTTPConnection(host, port, timeout=5)
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            response.read()
            conn.close()
            assert response.status == 503
