"""Property-based tests for assignment invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assigner import TopWorkerSet, greedy_assign, scheme_value
from repro.core.optimal import bitmask_optimal, enumerate_optimal


@st.composite
def candidate_instance(draw):
    """A random optimal-assignment instance with ≤ 8 workers."""
    num_workers = draw(st.integers(2, 8))
    workers = [f"w{i}" for i in range(num_workers)]
    num_candidates = draw(st.integers(1, 10))
    candidates = []
    for t in range(num_candidates):
        size = draw(st.integers(1, min(3, num_workers)))
        chosen = draw(
            st.lists(
                st.sampled_from(workers),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        accuracies = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=size,
                max_size=size,
            )
        )
        candidates.append(
            TopWorkerSet(
                task_id=t, workers=tuple(zip(chosen, accuracies))
            )
        )
    return candidates


class TestGreedyProperties:
    @given(candidates=candidate_instance())
    @settings(max_examples=60, deadline=None)
    def test_scheme_is_disjoint(self, candidates):
        scheme = greedy_assign(candidates)
        used = set()
        for selected in scheme:
            assert not (selected.worker_ids & used)
            used |= selected.worker_ids

    @given(candidates=candidate_instance())
    @settings(max_examples=60, deadline=None)
    def test_scheme_is_maximal(self, candidates):
        scheme = greedy_assign(candidates)
        chosen = {c.task_id for c in scheme}
        used = set()
        for selected in scheme:
            used |= selected.worker_ids
        for candidate in candidates:
            if candidate.task_id not in chosen:
                assert candidate.worker_ids & used

    @given(candidates=candidate_instance())
    @settings(max_examples=60, deadline=None)
    def test_greedy_bounded_by_optimum(self, candidates):
        greedy_value = scheme_value(greedy_assign(candidates))
        optimal_value, _ = bitmask_optimal(candidates)
        assert greedy_value <= optimal_value + 1e-9

    @given(candidates=candidate_instance())
    @settings(max_examples=30, deadline=None)
    def test_exact_solvers_agree(self, candidates):
        v_enum, _ = enumerate_optimal(candidates)
        v_mask, _ = bitmask_optimal(candidates)
        assert abs(v_enum - v_mask) < 1e-9

    @given(candidates=candidate_instance())
    @settings(max_examples=30, deadline=None)
    def test_optimal_scheme_value_consistent(self, candidates):
        value, scheme = enumerate_optimal(candidates)
        assert abs(scheme_value(scheme) - value) < 1e-9
