"""Property-based tests for the calibrated estimator (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EstimatorConfig
from repro.core.estimator import AccuracyEstimator
from repro.core.graph import SimilarityGraph


@st.composite
def graph_and_observed(draw, max_nodes=8):
    n = draw(st.integers(min_value=3, max_value=max_nodes))
    edges = []
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for i, j in possible:
        if draw(st.booleans()):
            edges.append(
                (i, j, draw(st.floats(min_value=0.2, max_value=1.0)))
            )
    graph = SimilarityGraph.from_edges(n, edges)
    num_obs = draw(st.integers(min_value=0, max_value=n))
    observed_tasks = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=num_obs,
            max_size=num_obs,
            unique=True,
        )
    )
    observed = {
        t: draw(st.floats(min_value=0.0, max_value=1.0))
        for t in observed_tasks
    }
    return graph, observed


class TestCalibratedEstimateProperties:
    @given(data=graph_and_observed())
    @settings(max_examples=80, deadline=None)
    def test_output_in_unit_interval(self, data):
        graph, observed = data
        estimator = AccuracyEstimator(graph, EstimatorConfig())
        estimate = estimator.estimate(observed)
        assert estimate.shape == (graph.num_tasks,)
        assert estimate.min() >= 0.0
        assert estimate.max() <= 1.0

    @given(data=graph_and_observed())
    @settings(max_examples=80, deadline=None)
    def test_perfect_evidence_never_below_prior(self, data):
        """All-1 observations can only raise estimates above the prior."""
        graph, observed = data
        all_ones = {t: 1.0 for t in observed}
        estimator = AccuracyEstimator(
            graph, EstimatorConfig(prior_accuracy=0.5)
        )
        estimate = estimator.estimate(all_ones)
        assert estimate.min() >= 0.5 - 1e-9

    @given(data=graph_and_observed())
    @settings(max_examples=80, deadline=None)
    def test_zero_evidence_never_above_prior(self, data):
        graph, observed = data
        all_zero = {t: 0.0 for t in observed}
        estimator = AccuracyEstimator(
            graph, EstimatorConfig(prior_accuracy=0.5)
        )
        estimate = estimator.estimate(all_zero)
        assert estimate.max() <= 0.5 + 1e-9

    @given(data=graph_and_observed())
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_observations(self, data):
        """Raising any single observation never lowers any estimate."""
        graph, observed = data
        if not observed:
            return
        estimator = AccuracyEstimator(graph, EstimatorConfig())
        base = estimator.estimate(observed)
        task = next(iter(observed))
        raised = dict(observed)
        raised[task] = min(1.0, observed[task] + 0.3)
        bumped = estimator.estimate(raised)
        assert (bumped - base).min() >= -1e-9

    @given(data=graph_and_observed())
    @settings(max_examples=60, deadline=None)
    def test_observed_support_respected(self, data):
        """On observed tasks the estimate moves toward the observation
        relative to the prior (evidence counts)."""
        graph, observed = data
        estimator = AccuracyEstimator(
            graph, EstimatorConfig(prior_accuracy=0.5)
        )
        estimate = estimator.estimate(observed)
        for task, value in observed.items():
            if value > 0.9:
                assert estimate[task] >= 0.5 - 1e-9
            if value < 0.1:
                assert estimate[task] <= 0.5 + 1e-9
