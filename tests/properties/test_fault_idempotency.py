"""Property tests: replaying answers with injected duplicates is a
no-op (the idempotency contract behind the resilient interaction loop).

A platform run is recorded once; its answer stream is then replayed
into fresh policies with duplicate ``AnswerEvent``s injected at
arbitrary positions.  Whatever the duplication pattern, the final
``predictions()``, the total cost and the per-worker assignment counts
must match the duplicate-free replay exactly.
"""

import functools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import RandomMV
from repro.core.types import AnswerOutcome, Label, Task, TaskSet
from repro.platform import (
    AnswerEvent,
    EventLog,
    PaymentLedger,
    SimulatedPlatform,
)
from repro.workers import WorkerPool, generate_profiles

pytestmark = pytest.mark.faults


@functools.lru_cache(maxsize=1)
def recorded_mv_run():
    """One RandomMV platform run and its recorded answer stream."""
    tasks = TaskSet(
        [
            Task(i, f"task {i} tokens shared", "d",
                 Label.YES if i % 2 == 0 else Label.NO)
            for i in range(6)
        ]
    )
    pool = WorkerPool(generate_profiles(["d"], 5, seed=4), seed=4)
    policy = RandomMV(tasks, k=3, seed=4)
    report = SimulatedPlatform(tasks, pool, policy, seed=4).run()
    assert report.finished
    return tasks, tuple(report.events.answers())


@functools.lru_cache(maxsize=1)
def recorded_icrowd_run():
    """One ICrowd platform run (warm-up, tests and votes included)."""
    from repro.core import ICrowd, ICrowdConfig
    from repro.core.config import GraphConfig, QualificationConfig
    from repro.datasets import make_itemcompare

    tasks = make_itemcompare(seed=5, tasks_per_domain=6)
    config = ICrowdConfig(
        qualification=QualificationConfig(
            num_qualification=4, qualification_threshold=0.0
        ),
        graph=GraphConfig(measure="jaccard", threshold=0.3),
        seed=5,
    )
    policy = ICrowd(tasks, config)
    pool = WorkerPool(
        generate_profiles(tasks.domains(), 8, seed=5), seed=5
    )
    report = SimulatedPlatform(tasks, pool, policy, seed=5).run()
    assert report.finished
    return tasks, config, tuple(report.events.answers())


def replay(policy, answers, duplicate_at=frozenset()):
    """Feed an answer stream into a policy, re-delivering some answers.

    Returns (predictions, total_cost, per-worker answer counts); every
    injected duplicate must be reported as such by the policy.
    """
    payments = PaymentLedger()
    log = EventLog()
    for index, event in enumerate(answers):
        deliveries = 2 if index in duplicate_at else 1
        for attempt in range(deliveries):
            outcome = policy.on_answer(
                event.worker_id, event.task_id, event.label,
                event.is_test,
            )
            outcome = AnswerOutcome.ACCEPTED if outcome is None else outcome
            if attempt > 0:
                assert outcome is AnswerOutcome.DUPLICATE
            if outcome.accepted:
                payments.pay_once(event.worker_id, event.task_id)
                log.append(
                    AnswerEvent(
                        step=index,
                        worker_id=event.worker_id,
                        task_id=event.task_id,
                        label=event.label,
                        is_test=event.is_test,
                    )
                )
    return (
        policy.predictions(),
        payments.total_cost,
        log.assignment_counts(include_tests=True),
    )


class TestRandomMVReplay:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_duplicates_change_nothing(self, data):
        tasks, answers = recorded_mv_run()
        duplicate_at = data.draw(
            st.frozensets(
                st.integers(0, len(answers) - 1), max_size=len(answers)
            )
        )
        clean = replay(RandomMV(tasks, k=3, seed=4), answers)
        noisy = replay(
            RandomMV(tasks, k=3, seed=4), answers, duplicate_at
        )
        assert noisy == clean

    def test_every_answer_duplicated(self):
        tasks, answers = recorded_mv_run()
        clean = replay(RandomMV(tasks, k=3, seed=4), answers)
        noisy = replay(
            RandomMV(tasks, k=3, seed=4), answers,
            frozenset(range(len(answers))),
        )
        assert noisy == clean


class TestICrowdReplay:
    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_duplicates_change_nothing(self, data):
        from repro.core import ICrowd

        tasks, config, answers = recorded_icrowd_run()
        duplicate_at = data.draw(
            st.frozensets(
                st.integers(0, len(answers) - 1), max_size=len(answers)
            )
        )
        clean = replay(ICrowd(tasks, config), answers)
        noisy = replay(ICrowd(tasks, config), answers, duplicate_at)
        assert noisy == clean
