"""Property-based tests for voting, Eq. (5) and aggregation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.majority import majority_vote
from repro.aggregation.pv import verification_posterior
from repro.core.observed import consensus_observed_accuracy
from repro.core.testing import beta_variance
from repro.core.types import Answer, Label, VoteState

labels = st.sampled_from([Label.YES, Label.NO])
accuracies = st.floats(min_value=0.0, max_value=1.0)
votes_strategy = st.lists(
    st.tuples(labels, accuracies), min_size=1, max_size=9
)


class TestObservedAccuracyProperties:
    @given(votes=votes_strategy, consensus=labels)
    @settings(max_examples=100)
    def test_in_unit_interval(self, votes, consensus):
        for worker_label in (Label.YES, Label.NO):
            value = consensus_observed_accuracy(
                worker_label, consensus, votes
            )
            assert 0.0 <= value <= 1.0

    @given(votes=votes_strategy, consensus=labels)
    @settings(max_examples=100)
    def test_agree_disagree_complement(self, votes, consensus):
        agree = consensus_observed_accuracy(consensus, consensus, votes)
        disagree = consensus_observed_accuracy(
            consensus.flipped(), consensus, votes
        )
        assert abs(agree + disagree - 1.0) < 1e-9

    @given(votes=votes_strategy)
    @settings(max_examples=100)
    def test_label_symmetry(self, votes):
        """Globally flipping every label and the consensus leaves the
        observed accuracy unchanged."""
        original = consensus_observed_accuracy(Label.YES, Label.YES, votes)
        flipped_votes = [(lbl.flipped(), acc) for lbl, acc in votes]
        flipped = consensus_observed_accuracy(
            Label.NO, Label.NO, flipped_votes
        )
        assert abs(original - flipped) < 1e-9


class TestVerificationPosteriorProperties:
    @given(votes=votes_strategy, prior=st.floats(0.01, 0.99))
    @settings(max_examples=100)
    def test_posterior_in_unit_interval(self, votes, prior):
        posterior = verification_posterior(votes, prior_yes=prior)
        assert 0.0 <= posterior <= 1.0

    @given(votes=votes_strategy)
    @settings(max_examples=100)
    def test_flip_symmetry(self, votes):
        """Flipping all votes flips the posterior around 0.5."""
        p = verification_posterior(votes)
        flipped = verification_posterior(
            [(lbl.flipped(), acc) for lbl, acc in votes]
        )
        assert abs(p - (1.0 - flipped)) < 1e-9


class TestBetaVarianceProperties:
    @given(
        n1=st.floats(min_value=0, max_value=100),
        n0=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_bounded_by_uninformed(self, n1, n0):
        assert 0.0 < beta_variance(n1, n0) <= 1.0 / 12.0 + 1e-12

    @given(n=st.floats(min_value=0, max_value=50))
    @settings(max_examples=50)
    def test_monotone_decreasing_in_balanced_evidence(self, n):
        assert beta_variance(n + 1, n + 1) < beta_variance(n, n)


@st.composite
def task_answers(draw):
    n_votes = draw(st.integers(1, 9))
    return [
        Answer(task_id=0, worker_id=f"w{i}", label=draw(labels))
        for i in range(n_votes)
    ]


class TestVotingProperties:
    @given(answers=task_answers())
    @settings(max_examples=100)
    def test_majority_matches_vote_state(self, answers):
        state = VoteState(task_id=0, k=len(answers))
        for answer in answers:
            state.add(answer)
        assert majority_vote(answers)[0] == state.consensus()

    @given(answers=task_answers())
    @settings(max_examples=100)
    def test_flipping_all_labels_flips_strict_majorities(self, answers):
        yes = sum(1 for a in answers if a.label is Label.YES)
        no = len(answers) - yes
        if yes == no:
            return  # ties handled by tie_break, not symmetry
        original = majority_vote(answers)[0]
        flipped_answers = [
            Answer(a.task_id, a.worker_id, a.label.flipped())
            for a in answers
        ]
        flipped = majority_vote(flipped_answers)[0]
        assert flipped == original.flipped()
