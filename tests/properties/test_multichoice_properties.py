"""Property-based tests for the multi-choice voting layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multichoice import (
    MultiVoteState,
    multichoice_observed_accuracy,
    plurality_vote,
)

CHOICES = ("a", "b", "c", "d")

choice = st.sampled_from(CHOICES)
accuracy = st.floats(min_value=0.0, max_value=1.0)
votes_strategy = st.lists(
    st.tuples(choice, accuracy), min_size=1, max_size=8
)


class TestObservedAccuracyProperties:
    @given(
        votes=votes_strategy,
        worker=choice,
        consensus=choice,
        m=st.integers(2, 10),
    )
    @settings(max_examples=150)
    def test_in_unit_interval(self, votes, worker, consensus, m):
        value = multichoice_observed_accuracy(
            worker, consensus, votes, num_choices=m
        )
        assert 0.0 <= value <= 1.0

    @given(votes=votes_strategy, consensus=choice, m=st.integers(2, 10))
    @settings(max_examples=150)
    def test_candidate_posteriors_sum_to_at_most_one(
        self, votes, consensus, m
    ):
        """The per-label posteriors over any label set are a
        sub-distribution: summing the observed accuracy over all
        distinct worker labels (holding the consensus fixed) never
        exceeds 1 plus the agreeing worker's share counted once."""
        labels = {c for c, _ in votes} | {consensus}
        total = 0.0
        for label in labels:
            value = multichoice_observed_accuracy(
                label, consensus, votes, num_choices=m
            )
            if label == consensus:
                total += value
            else:
                total += value
        # each summand is the posterior of a distinct candidate label
        # being true, so the sum over all candidates is exactly 1
        assert total <= 1.0 + 1e-6

    @given(votes=votes_strategy, m=st.integers(2, 10))
    @settings(max_examples=100)
    def test_relabeling_symmetry(self, votes, m):
        """Permuting label names leaves observed accuracies unchanged."""
        mapping = {"a": "b", "b": "c", "c": "d", "d": "a"}
        permuted = [(mapping[c], p) for c, p in votes]
        original = multichoice_observed_accuracy(
            votes[0][0], votes[0][0], votes, num_choices=m
        )
        renamed = multichoice_observed_accuracy(
            mapping[votes[0][0]],
            mapping[votes[0][0]],
            permuted,
            num_choices=m,
        )
        assert abs(original - renamed) < 1e-9


@st.composite
def vote_script(draw):
    n_votes = draw(st.integers(1, 7))
    return [
        (f"w{i}", draw(choice)) for i in range(n_votes)
    ]


class TestPluralityProperties:
    @given(script=vote_script())
    @settings(max_examples=150)
    def test_state_and_batch_agree(self, script):
        state = MultiVoteState(task_id=0, k=len(script), choices=CHOICES)
        flat = []
        for worker, picked in script:
            state.add(worker, picked)
            flat.append((0, worker, picked))
        assert plurality_vote(flat, CHOICES)[0] == state.consensus()

    @given(script=vote_script())
    @settings(max_examples=150)
    def test_consensus_has_max_tally(self, script):
        state = MultiVoteState(task_id=0, k=len(script), choices=CHOICES)
        for worker, picked in script:
            state.add(worker, picked)
        tallies = state.tallies()
        assert tallies[state.consensus()] == max(tallies.values())
