"""Property-based test: checkpoint/restore is behaviourally invisible.

Drives an ICrowd instance with a random interaction script, checkpoints
at a random point, restores into a fresh framework, then continues BOTH
copies with the same remaining script.  Every observable — predictions,
completed tasks, pending assignments, estimates — must stay identical:
a mid-job server restart may never change the outcome of the job.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    AssignerConfig,
    EstimatorConfig,
    GraphConfig,
    ICrowdConfig,
    QualificationConfig,
)
from repro.core.framework import ICrowd
from repro.core.graph import SimilarityGraph
from repro.core.persistence import checkpoint_state, restore_state
from repro.core.types import Label, Task, TaskSet

WORKERS = ["w1", "w2", "w3", "w4"]


def make_workload():
    rows = [
        ("alpha beta gamma one", "x"),
        ("alpha beta delta two", "x"),
        ("alpha gamma delta three", "x"),
        ("omega sigma tau four", "y"),
        ("omega sigma rho five", "y"),
        ("omega tau rho six", "y"),
    ]
    tasks = TaskSet(
        [
            Task(i, text, domain, Label.YES if i % 2 == 0 else Label.NO)
            for i, (text, domain) in enumerate(rows)
        ]
    )
    config = ICrowdConfig(
        estimator=EstimatorConfig(),
        assigner=AssignerConfig(k=2),
        qualification=QualificationConfig(
            num_qualification=2, qualification_threshold=0.0
        ),
        graph=GraphConfig(measure="jaccard", threshold=0.2),
    )
    graph = SimilarityGraph.from_tasks(list(tasks), config.graph)
    return tasks, config, graph


def build(tasks, config, graph):
    return ICrowd(
        tasks, config, graph=graph, qualification_tasks=[0, 3]
    )


def play(framework, tasks, script):
    """Apply a script of (worker index, answer bit) interactions."""
    for worker_index, answer_bit in script:
        worker = WORKERS[worker_index]
        assignment = framework.on_worker_request(worker, WORKERS)
        if assignment is None:
            continue
        truth = tasks[assignment.task_id].truth
        label = truth if answer_bit else truth.flipped()
        framework.on_answer(
            worker, assignment.task_id, label, assignment.is_test
        )


def observables(framework):
    return (
        framework.predictions(),
        sorted(framework.completed_tasks()),
        framework.pending_assignments(),
        {
            t: [(a.worker_id, a.label) for a in vs.answers]
            for t, vs in framework.votes().items()
        },
    )


interaction = st.tuples(
    st.integers(0, len(WORKERS) - 1), st.booleans()
)


class TestCheckpointTransparency:
    @given(
        prefix=st.lists(interaction, min_size=0, max_size=25),
        suffix=st.lists(interaction, min_size=0, max_size=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_restart_mid_job_changes_nothing(self, prefix, suffix):
        tasks, config, graph = make_workload()

        # reference: play the whole script without a restart
        reference = build(tasks, config, graph)
        play(reference, tasks, prefix)
        payload = checkpoint_state(reference)
        play(reference, tasks, suffix)

        # restarted copy: restore from the checkpoint, then continue
        restored = restore_state(build(tasks, config, graph), payload)
        play(restored, tasks, suffix)

        assert observables(restored) == observables(reference)
        # estimates are derived state and must also agree
        for worker in WORKERS:
            if reference.warmup.state_of(worker).num_answered == 0:
                continue
            assert np.allclose(
                restored.estimate_for(worker),
                reference.estimate_for(worker),
            )
