"""Property-based tests for the PPR machinery (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import SimilarityGraph
from repro.core.ppr import PPRBasis, power_iteration, solve_exact


@st.composite
def random_graph(draw, max_nodes=10):
    """A random undirected weighted graph as a SimilarityGraph."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = []
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    flags = draw(
        st.lists(
            st.booleans(), min_size=len(possible), max_size=len(possible)
        )
    )
    weights = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1.0),
            min_size=len(possible),
            max_size=len(possible),
        )
    )
    for (i, j), keep, weight in zip(possible, flags, weights):
        if keep:
            edges.append((i, j, weight))
    return SimilarityGraph.from_edges(n, edges)


@st.composite
def graph_and_restart(draw):
    graph = draw(random_graph())
    q = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=graph.num_tasks,
            max_size=graph.num_tasks,
        )
    )
    return graph, np.array(q)


class TestPowerIterationProperties:
    @given(data=graph_and_restart())
    @settings(max_examples=40, deadline=None)
    def test_matches_exact_solver(self, data):
        graph, q = data
        iterated = power_iteration(
            graph.normalized, q, damping=0.5, tol=1e-12, max_iter=500
        )
        exact = solve_exact(graph.normalized, q, damping=0.5)
        assert np.allclose(iterated, exact, atol=1e-7)

    @given(data=graph_and_restart())
    @settings(max_examples=40, deadline=None)
    def test_nonnegative_for_nonnegative_restart(self, data):
        graph, q = data
        result = power_iteration(graph.normalized, q, damping=0.5)
        assert result.min() >= -1e-12

    @given(data=graph_and_restart(), scale=st.floats(0.1, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_homogeneous_in_restart(self, data, scale):
        """p(c·q) = c·p(q): the solve is linear."""
        graph, q = data
        base = power_iteration(graph.normalized, q, damping=0.5, tol=1e-12)
        scaled = power_iteration(
            graph.normalized, scale * q, damping=0.5, tol=1e-12
        )
        assert np.allclose(scaled, scale * base, atol=1e-6)


class TestBasisProperties:
    @given(data=graph_and_restart())
    @settings(max_examples=25, deadline=None)
    def test_linearity_lemma3(self, data):
        """Lemma 3 on arbitrary graphs and restarts."""
        graph, q = data
        basis = PPRBasis.compute(
            graph.normalized, damping=0.5, epsilon=0.0, method="batch",
            tol=1e-12, max_iter=500,
        )
        combined = basis.combine(q)
        direct = power_iteration(
            graph.normalized, q, damping=0.5, tol=1e-12, max_iter=500
        )
        assert np.allclose(combined, direct, atol=1e-6)

    @given(graph=random_graph())
    @settings(max_examples=25, deadline=None)
    def test_push_and_batch_agree(self, graph):
        batch = PPRBasis.compute(
            graph.normalized, damping=0.5, epsilon=1e-10, method="batch",
            tol=1e-12,
        )
        push = PPRBasis.compute(
            graph.normalized, damping=0.5, epsilon=1e-10, method="push"
        )
        for i in range(graph.num_tasks):
            assert np.allclose(batch.row(i), push.row(i), atol=1e-5)

    @given(graph=random_graph())
    @settings(max_examples=25, deadline=None)
    def test_basis_rows_nonnegative(self, graph):
        basis = PPRBasis.compute(graph.normalized, damping=0.5)
        for i in range(graph.num_tasks):
            assert basis.row(i).min() >= -1e-12
