"""Property-based tests for incremental basis repair (hypothesis).

Across random insertion sequences — arbitrary interleavings of task
batches (including empty ones), fresh edges and weight rewrites — a
basis maintained by :meth:`PPRBasis.repair` from the graph's change
journal must stay within the push tolerance of a cold rebuild.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ppr import PPRBasis, basis_push_epsilon
from repro.core.streaming import GrowableGraph

DAMPING = 0.5
#: Storage truncation off: comparisons then see the raw push output and
#: the tolerance below is a pure function of the push invariant, not of
#: which entries straddled the truncation threshold.
EPSILON = 0.0


@st.composite
def insertion_rounds(draw):
    """An initial graph plus 1-3 rounds of mixed insertions."""
    script = []
    initial = draw(st.integers(2, 8))
    total = initial
    num_rounds = draw(st.integers(1, 3))
    for _ in range(num_rounds):
        ops = []
        count = draw(st.integers(0, 4))
        ops.append(("tasks", count))
        grown = total + count
        for _ in range(draw(st.integers(0, 6))):
            i = draw(st.integers(0, grown - 1))
            j = draw(st.integers(0, grown - 1))
            if i != j:
                weight = draw(
                    st.floats(min_value=0.1, max_value=1.0)
                )
                ops.append(("edge", (i, j, weight)))
        script.append(ops)
        total = grown
    return initial, script


def seed_graph(initial, seed_edges=True):
    graph = GrowableGraph()
    graph.add_tasks(initial)
    if seed_edges and initial >= 2:
        # a deterministic chain so the initial basis is non-trivial
        for i in range(initial - 1):
            graph.add_edge(i, i + 1, 0.5 + 0.1 * (i % 3))
    return graph


def apply_round(graph, ops):
    for kind, arg in ops:
        if kind == "tasks":
            graph.add_tasks(arg)
        else:
            graph.add_edge(*arg)


class TestRepairEqualsColdRebuild:
    @given(scenario=insertion_rounds())
    @settings(max_examples=60, deadline=None)
    def test_repaired_basis_matches_cold(self, scenario):
        initial, script = scenario
        graph = seed_graph(initial)
        basis = PPRBasis.compute(
            graph.normalized_csr(), DAMPING,
            epsilon=EPSILON, method="push",
        )
        graph.mark_clean()
        tolerance = 10.0 * basis_push_epsilon(EPSILON)
        for ops in script:
            apply_round(graph, ops)
            delta = graph.mark_clean()
            basis = basis.repair(
                graph.normalized_csr(), delta.dirty_rows, DAMPING,
                epsilon=EPSILON,
            )
            cold = PPRBasis.compute(
                graph.normalized_csr(), DAMPING,
                epsilon=EPSILON, method="push",
            )
            diff = basis.matrix - cold.matrix
            max_diff = (
                np.abs(diff.toarray()).max() if diff.nnz else 0.0
            )
            assert max_diff <= tolerance

    @given(scenario=insertion_rounds())
    @settings(max_examples=30, deadline=None)
    def test_repair_preserves_row_count(self, scenario):
        initial, script = scenario
        graph = seed_graph(initial)
        basis = PPRBasis.compute(
            graph.normalized_csr(), DAMPING,
            epsilon=EPSILON, method="push",
        )
        graph.mark_clean()
        for ops in script:
            apply_round(graph, ops)
            delta = graph.mark_clean()
            basis = basis.repair(
                graph.normalized_csr(), delta.dirty_rows, DAMPING,
                epsilon=EPSILON,
            )
            assert basis.num_tasks == graph.num_tasks
