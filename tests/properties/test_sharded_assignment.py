"""Per-shard greedy + cross-shard merge vs whole-graph greedy.

The merge pass only arbitrates workers claimed across shards, so on
*shard-disjoint* inputs — every worker eligible in exactly one shard —
the sharded pipeline must reproduce the whole-graph greedy scheme
exactly.  (On overlapping inputs the two may differ: greedy is an
approximation and locality changes its tie landscape; the paper-level
guarantee only covers the disjoint case, which component sharding
produces by construction.)
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assigner import (
    AdaptiveAssigner,
    TaskState,
    compute_top_worker_sets_fast,
    greedy_assign,
    group_states_by_shard,
    merge_shard_schemes,
    scheme_value,
)
from repro.core.indexes import ShardIndex


@st.composite
def shard_disjoint_instance(draw):
    """Random tasks + workers where each worker only serves one shard.

    Shards partition the task range contiguously; each shard gets its
    own worker pool, and every task marks all other shards' workers as
    ``tested`` so they are ineligible — worker-disjointness enforced
    through the same eligibility masking the assigner itself uses.
    """
    num_shards = draw(st.integers(2, 4))
    shard_sizes = [draw(st.integers(1, 5)) for _ in range(num_shards)]
    num_tasks = sum(shard_sizes)
    shards = []
    start = 0
    for size in shard_sizes:
        shards.append(list(range(start, start + size)))
        start += size
    index = ShardIndex(shards, num_tasks)

    workers: list[str] = []
    workers_of_shard: list[list[str]] = []
    for shard_id in range(num_shards):
        pool = [
            f"s{shard_id}w{i}"
            for i in range(draw(st.integers(1, 4)))
        ]
        workers_of_shard.append(pool)
        workers.extend(pool)

    accuracies = {
        w: np.array(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0),
                    min_size=num_tasks,
                    max_size=num_tasks,
                )
            )
        )
        for w in workers
    }
    k = draw(st.integers(1, 3))
    states = []
    for task_id in range(num_tasks):
        shard_id = index.shard_of(task_id)
        foreign = {
            w
            for other, pool in enumerate(workers_of_shard)
            if other != shard_id
            for w in pool
        }
        states.append(
            TaskState(task_id=task_id, k=k, tested_workers=foreign)
        )
    return index, states, workers, accuracies


class TestShardDisjointEquality:
    @given(instance=shard_disjoint_instance())
    @settings(max_examples=50, deadline=None)
    def test_merged_equals_whole_graph(self, instance):
        index, states, workers, accuracies = instance
        whole = greedy_assign(
            compute_top_worker_sets_fast(states, workers, accuracies)
        )
        shard_schemes = {
            shard_id: greedy_assign(
                compute_top_worker_sets_fast(
                    members, workers, accuracies
                )
            )
            for shard_id, members in group_states_by_shard(
                states, index
            ).items()
        }
        merged = merge_shard_schemes(shard_schemes)
        assert {(c.task_id, c.worker_ids) for c in merged} == {
            (c.task_id, c.worker_ids) for c in whole
        }
        # repro-lint: disable=RL004 -- same float objects on both sides
        assert scheme_value(merged) == scheme_value(whole)

    @given(instance=shard_disjoint_instance())
    @settings(max_examples=25, deadline=None)
    def test_assigner_with_shard_index_matches(self, instance):
        index, states, workers, accuracies = instance
        plain = AdaptiveAssigner().assign(states, workers, accuracies)
        sharded = AdaptiveAssigner(shard_index=index).assign(
            states, workers, accuracies
        )
        assert sorted(
            (a.task_id, a.worker_id) for a in plain
        ) == sorted((a.task_id, a.worker_id) for a in sharded)
