"""Property-based tests for the growable graph (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import GrowableGraph


@st.composite
def growth_script(draw):
    """A random interleaving of task and edge insertions."""
    operations = []
    num_tasks = draw(st.integers(1, 6))
    operations.append(("tasks", num_tasks))
    total = num_tasks
    for _ in range(draw(st.integers(0, 15))):
        if total >= 2 and draw(st.booleans()):
            i = draw(st.integers(0, total - 1))
            j = draw(st.integers(0, total - 1))
            if i != j:
                weight = draw(st.floats(min_value=0.1, max_value=1.0))
                operations.append(("edge", (i, j, weight)))
        else:
            count = draw(st.integers(1, 3))
            operations.append(("tasks", count))
            total += count
    return operations


def apply_script(operations):
    graph = GrowableGraph()
    for kind, arg in operations:
        if kind == "tasks":
            graph.add_tasks(arg)
        else:
            graph.add_edge(*arg)
    return graph


class TestGrowableGraphProperties:
    @given(operations=growth_script())
    @settings(max_examples=100)
    def test_degree_equals_adjacency_sum(self, operations):
        graph = apply_script(operations)
        for task_id in range(graph.num_tasks):
            expected = sum(graph.neighbors(task_id).values())
            assert graph.degree(task_id) == pytest_approx(expected)

    @given(operations=growth_script())
    @settings(max_examples=100)
    def test_adjacency_symmetric(self, operations):
        graph = apply_script(operations)
        for i in range(graph.num_tasks):
            for j, weight in graph.neighbors(i).items():
                assert graph.neighbors(j)[i] == weight

    @given(operations=growth_script())
    @settings(max_examples=100)
    def test_normalized_row_bounded(self, operations):
        """Entries of S' are s_ij / sqrt(d_i d_j) ≤ 1 because
        s_ij ≤ min(d_i, d_j)."""
        graph = apply_script(operations)
        for i in range(graph.num_tasks):
            for value in graph.normalized_row(i).values():
                assert 0.0 < value <= 1.0 + 1e-12

    @given(operations=growth_script())
    @settings(max_examples=100)
    def test_normalized_symmetric(self, operations):
        graph = apply_script(operations)
        for i in range(graph.num_tasks):
            row_i = graph.normalized_row(i)
            for j, value in row_i.items():
                assert graph.normalized_row(j)[i] == pytest_approx(value)


def pytest_approx(value, rel=1e-9):
    import pytest

    return pytest.approx(value, rel=rel, abs=1e-12)
