"""Property-based tests for warm-up grading and qualification logic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qualification import WarmUp
from repro.core.types import Label

labels = st.sampled_from([Label.YES, Label.NO])


@st.composite
def warmup_scenario(draw):
    num_tasks = draw(st.integers(1, 8))
    truth = {
        t: draw(labels) for t in range(num_tasks)
    }
    answers = {t: draw(labels) for t in range(num_tasks)}
    threshold = draw(st.floats(min_value=0.0, max_value=1.0))
    return truth, answers, threshold


class TestWarmUpProperties:
    @given(scenario=warmup_scenario())
    @settings(max_examples=100)
    def test_rejection_iff_below_threshold(self, scenario):
        truth, answers, threshold = scenario
        warmup = WarmUp(truth, threshold=threshold)
        for task, answer in answers.items():
            warmup.grade("w", task, answer)
        correct = sum(
            1 for t in truth if answers[t] == truth[t]
        )
        average = correct / len(truth)
        assert warmup.has_finished("w")
        assert warmup.is_qualified("w") == (average >= threshold)
        assert warmup.average_accuracy("w") == average

    @given(scenario=warmup_scenario())
    @settings(max_examples=100)
    def test_next_task_never_repeats(self, scenario):
        truth, answers, threshold = scenario
        warmup = WarmUp(truth, threshold=threshold)
        served = []
        while True:
            task = warmup.next_task("w")
            if task is None:
                break
            assert task not in served
            served.append(task)
            warmup.grade("w", task, answers[task])
        # every qualification task served exactly once (unless the
        # worker got rejected mid-way, which only happens at the end)
        if warmup.is_qualified("w"):
            assert sorted(served) == sorted(truth)

    @given(scenario=warmup_scenario(), extra=st.integers(0, 5))
    @settings(max_examples=60)
    def test_workers_independent(self, scenario, extra):
        truth, answers, threshold = scenario
        warmup = WarmUp(truth, threshold=threshold)
        for task, answer in answers.items():
            warmup.grade("w1", task, answer)
        # a second worker's state is untouched
        state = warmup.state_of("w2")
        assert state.num_answered == 0
        assert not state.rejected
        assert warmup.next_task("w2") is not None
