"""Meta-tests on the public API surface: documentation and exports.

Deliverable (e) of the reproduction requires doc comments on every
public item; these tests make that a regression-checked property
rather than a hope.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.platform",
    "repro.workers",
    "repro.datasets",
    "repro.text",
    "repro.aggregation",
    "repro.baselines",
    "repro.experiments",
    "repro.utils",
]


def iter_modules():
    seen = set()
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            name = f"{package_name}.{info.name}"
            if name not in seen:
                seen.add(name)
                yield importlib.import_module(name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", "").startswith("repro"):
                yield name, member


class TestDocumentation:
    def test_every_module_has_docstring(self):
        undocumented = [
            m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()
        ]
        assert not undocumented

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in iter_modules():
            for name, member in public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented

    def test_public_methods_documented(self):
        undocumented = []
        for module in iter_modules():
            for _, member in public_members(module):
                if not inspect.isclass(member):
                    continue
                for meth_name, meth in vars(member).items():
                    if meth_name.startswith("_"):
                        continue
                    if not callable(meth):
                        continue
                    if isinstance(meth, property):
                        doc = meth.fget.__doc__
                    else:
                        doc = getattr(meth, "__doc__", None)
                    if not (doc or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{member.__name__}."
                            f"{meth_name}"
                        )
        assert not undocumented, undocumented[:20]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists missing name {name!r}"
            )

    def test_version_present(self):
        assert repro.__version__
