"""Unit tests for the collapsed-Gibbs LDA implementation."""

import numpy as np
import pytest

from repro.text.lda import LatentDirichletAllocation


def make_corpus():
    phones = [f"iphone wifi screen battery model{i}" for i in range(8)]
    foods = [f"chocolate calories sugar sweet snack{i}" for i in range(8)]
    return phones + foods


class TestValidation:
    def test_rejects_single_topic(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(num_topics=1)

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(num_topics=2, num_iterations=0)

    def test_rejects_bad_priors(self):
        with pytest.raises(ValueError):
            LatentDirichletAllocation(num_topics=2, beta=0.0)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(num_topics=2, alpha=-1.0)

    def test_rejects_empty_corpus(self):
        lda = LatentDirichletAllocation(num_topics=2)
        with pytest.raises(ValueError, match="empty"):
            lda.fit_transform([])

    def test_rejects_stopword_only_corpus(self):
        lda = LatentDirichletAllocation(num_topics=2)
        with pytest.raises(ValueError, match="tokens"):
            lda.fit_transform(["the a of", "and or"])


class TestFitTransform:
    def test_rows_are_distributions(self):
        lda = LatentDirichletAllocation(
            num_topics=3, num_iterations=40, seed=0
        )
        theta = lda.fit_transform(make_corpus())
        assert theta.shape == (16, 3)
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert theta.min() > 0.0

    def test_deterministic_given_seed(self):
        corpus = make_corpus()
        a = LatentDirichletAllocation(
            num_topics=3, num_iterations=30, seed=5
        ).fit_transform(corpus)
        b = LatentDirichletAllocation(
            num_topics=3, num_iterations=30, seed=5
        ).fit_transform(corpus)
        assert np.array_equal(a, b)

    def test_separates_two_clear_topics(self):
        lda = LatentDirichletAllocation(
            num_topics=2, num_iterations=150, seed=3
        )
        theta = lda.fit_transform(make_corpus())
        phone_topic = int(np.argmax(theta[:8].mean(axis=0)))
        food_topic = int(np.argmax(theta[8:].mean(axis=0)))
        assert phone_topic != food_topic
        assert theta[:8, phone_topic].mean() > 0.7
        assert theta[8:, food_topic].mean() > 0.7


class TestTopWords:
    def test_requires_fit(self):
        lda = LatentDirichletAllocation(num_topics=2)
        with pytest.raises(RuntimeError, match="not fitted"):
            lda.top_words(0)

    def test_returns_vocabulary_words(self):
        lda = LatentDirichletAllocation(
            num_topics=2, num_iterations=30, seed=1
        )
        lda.fit_transform(make_corpus())
        words = lda.top_words(0, n=5)
        assert len(words) == 5
        assert all(w in lda.vocabulary_ for w in words)

    def test_validates_topic_index(self):
        lda = LatentDirichletAllocation(
            num_topics=2, num_iterations=10, seed=1
        )
        lda.fit_transform(make_corpus())
        with pytest.raises(ValueError):
            lda.top_words(5)
