"""Unit tests for the TF-IDF vectorizer."""

import numpy as np
import pytest

from repro.text.tfidf import TfIdfVectorizer


class TestFit:
    def test_rejects_empty_corpus(self):
        with pytest.raises(ValueError, match="empty"):
            TfIdfVectorizer().fit([])

    def test_vocabulary_sorted_and_complete(self):
        vec = TfIdfVectorizer().fit(["beta alpha", "gamma alpha"])
        assert list(vec.vocabulary_) == ["alpha", "beta", "gamma"]

    def test_is_fitted_flag(self):
        vec = TfIdfVectorizer()
        assert not vec.is_fitted
        vec.fit(["x"])
        assert vec.is_fitted


class TestTransform:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="before fit"):
            TfIdfVectorizer().transform(["x"])

    def test_rows_l2_normalized(self):
        matrix = TfIdfVectorizer().fit_transform(
            ["iphone wifi case", "ipad wifi cover", "ipod nano"]
        )
        norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1)))
        assert np.allclose(norms.ravel(), 1.0)

    def test_oov_tokens_ignored(self):
        vec = TfIdfVectorizer().fit(["alpha beta"])
        row = vec.transform(["gamma delta"])
        assert row.nnz == 0

    def test_rare_term_weighted_higher(self):
        corpus = ["common rare", "common other", "common thing"]
        vec = TfIdfVectorizer().fit(corpus)
        matrix = vec.transform(["common rare"]).toarray().ravel()
        common_idx = vec.vocabulary_["common"]
        rare_idx = vec.vocabulary_["rare"]
        assert matrix[rare_idx] > matrix[common_idx]

    def test_identical_docs_have_cosine_one(self):
        matrix = TfIdfVectorizer().fit_transform(["x y z", "x y z"])
        sim = (matrix @ matrix.T).toarray()
        assert sim[0, 1] == pytest.approx(1.0)

    def test_shape(self):
        matrix = TfIdfVectorizer().fit_transform(["a b", "c d", "e f"])
        assert matrix.shape[0] == 3
