"""Unit tests for tokenisation (Appendix D.1 preprocessing)."""

from repro.text.tokenize import STOPWORDS, token_set, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("iPhone WiFi") == ["iphone", "wifi"]

    def test_splits_on_punctuation(self):
        assert tokenize("note4, s4!") == ["note4", "s4"]

    def test_removes_stopwords_by_default(self):
        assert tokenize("the iphone is a phone") == ["iphone", "phone"]

    def test_keeps_stopwords_when_asked(self):
        tokens = tokenize("the iphone", remove_stopwords=False)
        assert tokens == ["the", "iphone"]

    def test_preserves_duplicates_and_order(self):
        assert tokenize("beta alpha beta") == ["beta", "alpha", "beta"]

    def test_numbers_survive(self):
        assert tokenize("ipad 3 32gb") == ["ipad", "3", "32gb"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_all_stopwords(self):
        assert tokenize("the a of and") == []


class TestTokenSet:
    def test_deduplicates_and_drops_stopwords(self):
        # "a" is a stopword; "b" and "iphone" survive, deduplicated
        assert token_set("a b a b iphone") == frozenset({"b", "iphone"})

    def test_is_frozenset(self):
        assert isinstance(token_set("x"), frozenset)


class TestStopwords:
    def test_common_words_present(self):
        for word in ("the", "and", "of", "is"):
            assert word in STOPWORDS

    def test_content_words_absent(self):
        for word in ("iphone", "calories", "nba"):
            assert word not in STOPWORDS
