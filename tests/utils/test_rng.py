"""Unit tests for deterministic RNG plumbing."""

from repro.utils.rng import spawn_rng, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("worker-pool") == stable_hash("worker-pool")

    def test_distinct_tags_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_64_bit_range(self):
        value = stable_hash("anything")
        assert 0 <= value < 2**64


class TestSpawnRng:
    def test_same_seed_tag_reproduces(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "x").random(5)
        assert (a == b).all()

    def test_different_tags_independent(self):
        a = spawn_rng(7, "x").random(5)
        b = spawn_rng(7, "y").random(5)
        assert (a != b).any()

    def test_different_seeds_differ(self):
        a = spawn_rng(1, "x").random(5)
        b = spawn_rng(2, "x").random(5)
        assert (a != b).any()
