"""Unit tests for extended worker behaviour models."""

import pytest

from repro.core.types import Label, Task
from repro.workers.behavior import BehaviorConfig, BehavioralWorker
from repro.workers.profiles import Archetype, WorkerProfile


def make_worker(accuracy=0.8, behavior=None, seed=0):
    profile = WorkerProfile("w", Archetype.GENERALIST, {"d": accuracy})
    return BehavioralWorker(profile, behavior=behavior, seed=seed)


def make_task(truth=Label.YES):
    return Task(task_id=0, text="t", domain="d", truth=truth)


class TestBehaviorConfig:
    def test_defaults_are_plain_worker(self):
        config = BehaviorConfig()
        assert config.yes_bias == 0.0
        assert config.fatigue_rate == 0.0
        assert config.learning_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BehaviorConfig(yes_bias=1.5)
        with pytest.raises(ValueError):
            BehaviorConfig(fatigue_rate=-0.1)
        with pytest.raises(ValueError):
            BehaviorConfig(fatigue_rate=0.1, learning_rate=0.1)
        with pytest.raises(ValueError):
            BehaviorConfig(floor=0.9, ceiling=0.8)


class TestYesBias:
    def test_asymmetric_confusion(self):
        """Bias raises accuracy on YES tasks, lowers it on NO tasks."""
        behavior = BehaviorConfig(yes_bias=0.4)
        n = 4000
        worker_yes = make_worker(0.7, behavior, seed=1)
        yes_correct = sum(
            worker_yes.answer(make_task(Label.YES)) is Label.YES
            for _ in range(n)
        )
        worker_no = make_worker(0.7, behavior, seed=2)
        no_correct = sum(
            worker_no.answer(make_task(Label.NO)) is Label.NO
            for _ in range(n)
        )
        # P(correct|YES) = .4 + .6·.7 = .82 ; P(correct|NO) = .6·.7 = .42
        assert abs(yes_correct / n - 0.82) < 0.03
        assert abs(no_correct / n - 0.42) < 0.03

    def test_zero_bias_matches_base_model(self):
        worker = make_worker(0.7, BehaviorConfig(), seed=5)
        n = 4000
        correct = sum(
            worker.answer(make_task(Label.NO)) is Label.NO
            for _ in range(n)
        )
        assert abs(correct / n - 0.7) < 0.03


class TestFatigue:
    def test_accuracy_decays(self):
        behavior = BehaviorConfig(fatigue_rate=0.05)
        worker = make_worker(0.9, behavior)
        task = make_task()
        fresh = worker.effective_accuracy(task)
        for _ in range(50):
            worker.answer(task)
        tired = worker.effective_accuracy(task)
        assert fresh == pytest.approx(0.9)
        assert tired < fresh
        assert tired >= behavior.floor

    def test_decay_approaches_coin_flip(self):
        behavior = BehaviorConfig(fatigue_rate=0.2)
        worker = make_worker(0.9, behavior)
        task = make_task()
        for _ in range(100):
            worker.answer(task)
        assert worker.effective_accuracy(task) == pytest.approx(0.5, abs=0.01)


class TestLearning:
    def test_accuracy_improves_toward_ceiling(self):
        behavior = BehaviorConfig(learning_rate=0.05, ceiling=0.95)
        worker = make_worker(0.6, behavior)
        task = make_task()
        initial = worker.effective_accuracy(task)
        for _ in range(100):
            worker.answer(task)
        final = worker.effective_accuracy(task)
        assert initial == pytest.approx(0.6)
        assert final > initial
        assert final <= 0.95 + 1e-9

    def test_answers_given_counts(self):
        worker = make_worker()
        task = make_task()
        for _ in range(7):
            worker.answer(task)
        assert worker.answers_given == 7
