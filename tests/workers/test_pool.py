"""Unit tests for the dynamic worker pool (Section 2.1 dynamics)."""

import pytest

from repro.workers.pool import WorkerPool
from repro.workers.profiles import generate_profiles

DOMAINS = ["a", "b"]


def make_pool(n=5, **kwargs):
    profiles = generate_profiles(DOMAINS, n, seed=0)
    return WorkerPool(profiles, seed=0, **kwargs)


class TestLifecycle:
    def test_all_active_after_first_tick_without_spread(self):
        pool = make_pool(4)
        assert pool.active_workers() == []
        pool.tick()
        assert len(pool.active_workers()) == 4

    def test_arrival_spread_staggers(self):
        pool = make_pool(10, arrival_spread=50)
        pool.tick()
        early = len(pool.active_workers())
        for _ in range(60):
            pool.tick()
        late = len(pool.active_workers())
        assert early < late == 10

    def test_sample_requester_none_when_empty(self):
        pool = make_pool(3)
        assert pool.sample_requester() is None

    def test_sample_requester_returns_active(self):
        pool = make_pool(3)
        pool.tick()
        assert pool.sample_requester() in pool.active_workers()

    def test_remove_is_permanent(self):
        pool = make_pool(3)
        pool.tick()
        victim = pool.active_workers()[0]
        pool.remove(victim)
        for _ in range(10):
            pool.tick()
        assert victim not in pool.active_workers()

    def test_deactivate_then_rearrive(self):
        pool = make_pool(3, churn=0.0)
        pool.tick()
        worker = pool.active_workers()[0]
        pool.deactivate(worker)
        assert worker not in pool.active_workers()
        pool.tick()  # churn=0 → immediate reactivation on arrival check
        assert worker in pool.active_workers()

    def test_churn_eventually_deactivates(self):
        pool = make_pool(5, churn=0.5)
        pool.tick()
        observed_inactive = False
        for _ in range(100):
            worker = pool.sample_requester()
            if worker is None:
                observed_inactive = True
                pool.tick()
                continue
            pool.note_submission(worker)
            if len(pool.active_workers()) < 5:
                observed_inactive = True
            pool.tick()
        assert observed_inactive

    def test_worker_accessor(self):
        pool = make_pool(2)
        profile = pool.profiles()[0]
        assert pool.worker(profile.worker_id).worker_id == profile.worker_id

    def test_len(self):
        assert len(make_pool(7)) == 7


class TestAbandonmentAndSuspension:
    def test_abandonment_not_credited_as_submission(self):
        pool = make_pool(3)
        pool.tick()
        worker = pool.active_workers()[0]
        pool.note_abandonment(worker)
        pool.note_abandonment(worker)
        pool.note_submission(worker)
        assert pool.abandonment_counts() == {worker: 2}
        assert pool.submission_counts() == {worker: 1}

    def test_abandonment_rolls_churn(self):
        pool = make_pool(5, churn=0.9)
        pool.tick()
        for worker in list(pool.active_workers()):
            pool.note_abandonment(worker)
        # with churn at 0.9, abandoning should knock someone out
        assert len(pool.active_workers()) < 5

    def test_suspend_keeps_worker_dark_for_duration(self):
        pool = make_pool(3, churn=0.0)
        pool.tick()
        worker = pool.active_workers()[0]
        pool.suspend(worker, duration=3)
        assert worker not in pool.active_workers()
        for _ in range(2):
            pool.tick()
            assert worker not in pool.active_workers()
        pool.tick()  # suspension elapsed: re-arrives on this tick
        assert worker in pool.active_workers()

    def test_suspend_extends_not_shrinks(self):
        pool = make_pool(2, churn=0.0)
        pool.tick()
        worker = pool.active_workers()[0]
        pool.suspend(worker, duration=5)
        pool.suspend(worker, duration=1)  # shorter: must not shorten
        for _ in range(4):
            pool.tick()
        assert worker not in pool.active_workers()

    def test_suspend_rejects_bad_duration(self):
        pool = make_pool(2)
        pool.tick()
        worker = pool.active_workers()[0]
        with pytest.raises(ValueError, match="duration"):
            pool.suspend(worker, duration=0)


class TestValidation:
    def test_requires_profiles(self):
        with pytest.raises(ValueError):
            WorkerPool([])

    def test_rejects_bad_churn(self):
        profiles = generate_profiles(DOMAINS, 2, seed=0)
        with pytest.raises(ValueError):
            WorkerPool(profiles, churn=1.0)

    def test_rejects_negative_spread(self):
        profiles = generate_profiles(DOMAINS, 2, seed=0)
        with pytest.raises(ValueError):
            WorkerPool(profiles, arrival_spread=-1)
