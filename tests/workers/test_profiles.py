"""Unit tests for worker profile generation (the Figure 6 population)."""

import pytest

from repro.workers.profiles import (
    Archetype,
    WorkerProfile,
    generate_profiles,
)

DOMAINS = ["Food", "NBA", "Auto", "Country"]


class TestWorkerProfile:
    def test_accuracy_lookup(self):
        profile = WorkerProfile(
            "w1", Archetype.EXPERT, {"Food": 0.9, "NBA": 0.3}
        )
        assert profile.accuracy("Food") == 0.9
        assert profile.accuracy("Unknown") == 0.5

    def test_mean_accuracy(self):
        profile = WorkerProfile(
            "w1", Archetype.GENERALIST, {"a": 0.6, "b": 0.8}
        )
        assert profile.mean_accuracy == pytest.approx(0.7)

    def test_best_domains(self):
        profile = WorkerProfile(
            "w1", Archetype.EXPERT, {"a": 0.6, "b": 0.9, "c": 0.3}
        )
        assert profile.best_domains(2) == ["b", "a"]

    def test_rejects_invalid_accuracy(self):
        with pytest.raises(ValueError):
            WorkerProfile("w1", Archetype.SPAMMER, {"a": 1.2})


class TestGenerateProfiles:
    def test_population_size(self):
        profiles = generate_profiles(DOMAINS, 53, seed=1)
        assert len(profiles) == 53

    def test_unique_worker_ids(self):
        profiles = generate_profiles(DOMAINS, 25, seed=2)
        ids = [p.worker_id for p in profiles]
        assert len(set(ids)) == 25

    def test_every_domain_covered(self):
        profiles = generate_profiles(DOMAINS, 53, seed=1)

    def test_deterministic(self):
        a = generate_profiles(DOMAINS, 20, seed=9)
        b = generate_profiles(DOMAINS, 20, seed=9)
        assert [p.accuracy_by_domain for p in a] == [
            p.accuracy_by_domain for p in b
        ]

    def test_different_seeds_differ(self):
        a = generate_profiles(DOMAINS, 20, seed=1)
        b = generate_profiles(DOMAINS, 20, seed=2)
        assert [p.accuracy_by_domain for p in a] != [
            p.accuracy_by_domain for p in b
        ]

    def test_mixture_counts_exact(self):
        mix = {
            Archetype.EXPERT: 0.5,
            Archetype.GENERALIST: 0.25,
            Archetype.SPAMMER: 0.25,
        }
        profiles = generate_profiles(DOMAINS, 20, seed=3, mix=mix)
        counts = {}
        for profile in profiles:
            counts[profile.archetype] = counts.get(profile.archetype, 0) + 1
        assert counts[Archetype.EXPERT] == 10
        assert counts[Archetype.GENERALIST] == 5
        assert counts[Archetype.SPAMMER] == 5

    def test_experts_have_a_strong_domain(self):
        profiles = generate_profiles(DOMAINS, 30, seed=4)
        for profile in profiles:
            if profile.archetype is Archetype.EXPERT:
                assert max(profile.accuracy_by_domain.values()) >= 0.85

    def test_expert_strong_domains_cover_all(self):
        """Round-robin forcing guarantees each domain has an expert in a
        large enough population (the Figure 6 structure)."""
        profiles = generate_profiles(DOMAINS, 40, seed=5)
        strong = set()
        for profile in profiles:
            if profile.archetype is Archetype.EXPERT:
                strong.update(
                    d
                    for d, acc in profile.accuracy_by_domain.items()
                    if acc >= 0.85
                )
        assert strong == set(DOMAINS)

    def test_spammers_near_random(self):
        profiles = generate_profiles(DOMAINS, 40, seed=6)
        for profile in profiles:
            if profile.archetype is Archetype.SPAMMER:
                assert max(profile.accuracy_by_domain.values()) <= 0.55

    def test_diversity_matches_figure6(self):
        """Experts show a wide accuracy span across domains."""
        profiles = generate_profiles(DOMAINS, 40, seed=7)
        spans = [
            max(p.accuracy_by_domain.values())
            - min(p.accuracy_by_domain.values())
            for p in profiles
            if p.archetype is Archetype.EXPERT
        ]
        assert min(spans) > 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_profiles(DOMAINS, 0)
        with pytest.raises(ValueError):
            generate_profiles([], 10)
        with pytest.raises(ValueError):
            generate_profiles(DOMAINS, 5, mix={Archetype.EXPERT: 0.0})
