"""Unit tests for the simulated worker answer model (Definition 1)."""


from repro.core.types import Label, Task
from repro.workers.profiles import Archetype, WorkerProfile
from repro.workers.simulator import SimulatedWorker


def make_worker(accuracy_by_domain, seed=0):
    profile = WorkerProfile("w1", Archetype.EXPERT, accuracy_by_domain)
    return SimulatedWorker(profile, seed=seed)


def make_task(domain, truth=Label.YES):
    return Task(task_id=0, text="t", domain=domain, truth=truth)


class TestAnswer:
    def test_perfect_worker_always_correct(self):
        worker = make_worker({"d": 1.0})
        task = make_task("d", Label.NO)
        assert all(worker.answer(task) is Label.NO for _ in range(50))

    def test_always_wrong_worker(self):
        worker = make_worker({"d": 0.0})
        task = make_task("d", Label.YES)
        assert all(worker.answer(task) is Label.NO for _ in range(50))

    def test_empirical_rate_matches_accuracy(self):
        worker = make_worker({"d": 0.7}, seed=1)
        task = make_task("d", Label.YES)
        n = 5000
        correct = sum(worker.answer(task) is Label.YES for _ in range(n))
        assert abs(correct / n - 0.7) < 0.03

    def test_domain_specific_behaviour(self):
        worker = make_worker({"strong": 1.0, "weak": 0.0}, seed=2)
        assert worker.answer(make_task("strong")) is Label.YES
        assert worker.answer(make_task("weak")) is Label.NO

    def test_unknown_domain_is_coin_flip(self):
        worker = make_worker({"d": 1.0}, seed=3)
        task = make_task("other")
        n = 3000
        yes = sum(worker.answer(task) is Label.YES for _ in range(n))
        assert abs(yes / n - 0.5) < 0.05

    def test_deterministic_stream(self):
        a = make_worker({"d": 0.6}, seed=9)
        b = make_worker({"d": 0.6}, seed=9)
        task = make_task("d")
        assert [a.answer(task) for _ in range(30)] == [
            b.answer(task) for _ in range(30)
        ]

    def test_true_accuracy_exposed_for_evaluation(self):
        worker = make_worker({"d": 0.8})
        assert worker.true_accuracy(make_task("d")) == 0.8

    def test_worker_id_passthrough(self):
        worker = make_worker({"d": 0.5})
        assert worker.worker_id == "w1"
