#!/usr/bin/env python3
"""Standalone entry point for the repro-lint static analyser.

Usage::

    python tools/repro_lint.py [paths...] [--deep] [--jobs N]
                               [--race -- <pytest args>]

A thin argv-forwarding shim around :func:`repro.analysis.cli.main` —
the same function ``repro-icrowd lint`` delegates to, so the two
entry points accept identical options by construction (a parity test
in ``tests/analysis/test_shim_parity.py`` keeps it that way).  The
wrapper only fixes up ``sys.path`` so the checker runs from a bare
checkout with no install step (CI uses it exactly this way).
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
